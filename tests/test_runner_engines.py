"""Equivalence and contract tests for the runner's two execution engines.

The mask engine (bitmask topologies, identity-cached validation, lazy state
views, incremental ``knowledge_mask`` tracking) and the legacy
networkx/frozenset engine implement the identical round semantics; these
tests pin that equivalence across protocol/adversary pairs, the auto engine
selection rules, the once-per-topology validation cache, and the
``rng.spawn`` node-seeding scheme.
"""

from __future__ import annotations

import dataclasses

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import (
    GreedyForwardNode,
    IndexedBroadcastNode,
    TokenForwardingNode,
    make_tstable_factory,
)
from repro.network import (
    BottleneckAdversary,
    PathShuffleAdversary,
    RandomConnectedAdversary,
    StaticAdversary,
    TStableAdversary,
    Topology,
    ring_topology,
)
from repro.network.stability import is_t_stable, max_stability
from repro.simulation import run_dissemination, standard_instance
from repro.simulation.runner import build_nodes
from tests.conftest import make_config


def _run(factory, config, adversary, *, engine, seed=3, **kwargs):
    placement = standard_instance(config.n, config.k, config.token_bits, seed=seed)
    return run_dissemination(
        factory, config, placement, adversary, seed=seed, engine=engine, **kwargs
    )


PAIRS = [
    pytest.param(
        TokenForwardingNode, lambda: BottleneckAdversary(), 12, id="forwarding-bottleneck"
    ),
    pytest.param(
        IndexedBroadcastNode,
        lambda: RandomConnectedAdversary(seed=7),
        10,
        id="rlnc-random-connected",
    ),
    pytest.param(
        GreedyForwardNode, lambda: PathShuffleAdversary(seed=5), 10, id="greedy-path-shuffle"
    ),
]


class TestEngineEquivalence:
    @pytest.mark.parametrize("factory,adversary_factory,n", PAIRS)
    def test_identical_metrics_and_knowledge(self, factory, adversary_factory, n):
        config = make_config(n)
        results = {
            engine: _run(
                factory,
                config,
                adversary_factory(),
                engine=engine,
                track_progress=True,
            )
            for engine in ("mask", "legacy")
        }
        mask, legacy = results["mask"], results["legacy"]
        assert mask.completed and mask.correct
        assert dataclasses.asdict(mask.metrics) == dataclasses.asdict(legacy.metrics)
        assert mask.correct == legacy.correct
        for mask_node, legacy_node in zip(mask.nodes, legacy.nodes):
            assert mask_node.known_token_ids() == legacy_node.known_token_ids()

    def test_tstable_patch_protocol_equivalence(self):
        # The coordinator-backed patch protocol exercises the nx projection
        # (to_nx) on the mask path every stability block.
        n, stability = 12, 4
        config = make_config(n, stability=stability)
        results = {}
        for engine in ("mask", "legacy"):
            factory = make_tstable_factory(config, seed=2)
            adversary = TStableAdversary(PathShuffleAdversary(seed=9), stability)
            results[engine] = _run(factory, config, adversary, engine=engine)
        mask, legacy = results["mask"], results["legacy"]
        assert mask.completed and mask.correct
        assert dataclasses.asdict(mask.metrics) == dataclasses.asdict(legacy.metrics)

    def test_recorded_topologies_match_across_engines(self):
        config = make_config(10)
        mask = _run(
            TokenForwardingNode,
            config,
            TStableAdversary(PathShuffleAdversary(seed=4), 3),
            engine="mask",
            record_topologies=True,
        )
        legacy = _run(
            TokenForwardingNode,
            config,
            TStableAdversary(PathShuffleAdversary(seed=4), 3),
            engine="legacy",
            record_topologies=True,
        )
        assert len(mask.topologies) == len(legacy.topologies)
        for mask_topology, nx_graph in zip(mask.topologies, legacy.topologies):
            assert isinstance(mask_topology, Topology)
            assert isinstance(nx_graph, nx.Graph)
            assert {frozenset(e) for e in mask_topology.edges} == {
                frozenset(e) for e in nx_graph.edges
            }
        # The stability checkers consume both representations identically.
        assert is_t_stable(mask.topologies, 3) == is_t_stable(legacy.topologies, 3)
        assert max_stability(mask.topologies) == max_stability(legacy.topologies)


class MutatingGraphAdversary(BottleneckAdversary):
    """Rewires and re-returns ONE ``nx.Graph`` object every round — a legal
    pre-PR adversary pattern the runner must not serve stale conversions
    for."""

    def __init__(self):
        super().__init__()
        self._graph = nx.Graph()

    def choose_topology(self, round_index, n, states, messages=None):
        fresh = super().choose_topology(round_index, n, states, messages)
        self._graph.clear()
        self._graph.add_nodes_from(range(n))
        self._graph.add_edges_from(fresh.edges)
        return self._graph


class TestEngineEquivalence2:
    def test_mutated_reused_nx_graph_not_served_stale(self):
        # Regression: the validation cache must key only on immutable
        # Topology objects; an nx.Graph mutated in place between rounds has
        # the same id but different edges.
        config = make_config(10)
        mask = _run(TokenForwardingNode, config, MutatingGraphAdversary(), engine="mask")
        legacy = _run(TokenForwardingNode, config, MutatingGraphAdversary(), engine="legacy")
        assert mask.completed and mask.correct
        assert dataclasses.asdict(mask.metrics) == dataclasses.asdict(legacy.metrics)


class OpaqueKnowledgeNode(TokenForwardingNode):
    """Same behaviour, but overrides ``known_token_ids`` — the documented
    opt-out from mask tracking (the ``known`` dict may not be authoritative
    for such protocols)."""

    def known_token_ids(self) -> frozenset:
        return frozenset(self.known)


class TestEngineSelection:
    def test_auto_prefers_mask_engine(self):
        config = make_config(8)
        result = _run(
            TokenForwardingNode,
            config,
            BottleneckAdversary(),
            engine="auto",
            record_topologies=True,
        )
        assert result.completed
        assert all(isinstance(t, Topology) for t in result.topologies)

    def test_auto_falls_back_to_legacy_for_opaque_protocols(self):
        config = make_config(8)
        result = _run(
            OpaqueKnowledgeNode,
            config,
            BottleneckAdversary(),
            engine="auto",
            record_topologies=True,
        )
        assert result.completed and result.correct
        assert all(isinstance(t, nx.Graph) for t in result.topologies)

    def test_mask_engine_rejects_opaque_protocols(self):
        config = make_config(8)
        with pytest.raises(ValueError, match="knowledge-mask"):
            _run(OpaqueKnowledgeNode, config, BottleneckAdversary(), engine="mask")

    def test_unknown_engine_rejected(self):
        config = make_config(8)
        with pytest.raises(ValueError, match="engine"):
            _run(TokenForwardingNode, config, BottleneckAdversary(), engine="turbo")

    def test_opaque_protocol_matches_plain_forwarding(self):
        # The override returns the same id set, so the legacy fallback must
        # reproduce the mask-engine run of the unmodified protocol.
        config = make_config(8)
        plain = _run(TokenForwardingNode, config, BottleneckAdversary(), engine="mask")
        opaque = _run(OpaqueKnowledgeNode, config, BottleneckAdversary(), engine="auto")
        assert dataclasses.asdict(plain.metrics) == dataclasses.asdict(opaque.metrics)


class TestValidationCache:
    def test_static_topology_validated_once(self, monkeypatch):
        calls = {"n": 0}
        original = Topology.validate

        def counting_validate(self, n=None):
            calls["n"] += 1
            return original(self, n)

        monkeypatch.setattr(Topology, "validate", counting_validate)
        config = make_config(8)
        result = _run(
            TokenForwardingNode,
            config,
            StaticAdversary(ring_topology(8)),
            engine="mask",
        )
        assert result.metrics.rounds_executed > 5
        # Once inside StaticAdversary's own constructor-time check, once in
        # the runner's identity-keyed cache — never once per round.
        assert calls["n"] <= 2

    def test_tstable_blocks_validated_once_per_block(self, monkeypatch):
        calls = {"n": 0}
        original = Topology.validate

        def counting_validate(self, n=None):
            calls["n"] += 1
            return original(self, n)

        monkeypatch.setattr(Topology, "validate", counting_validate)
        stability = 5
        config = make_config(8, stability=stability)
        result = _run(
            TokenForwardingNode,
            config,
            TStableAdversary(PathShuffleAdversary(seed=1), stability),
            engine="mask",
        )
        rounds = result.metrics.rounds_executed
        assert rounds > stability
        blocks = -(-rounds // stability)
        assert calls["n"] <= blocks + 1


class TestNodeSeeding:
    """``build_nodes`` derives node randomness via ``rng.spawn``.

    Seed-compat note: before the round-engine PR, children were re-seeded
    with ``default_rng(rng.integers(0, 2**63 - 1))`` — a single 63-bit draw
    with a documented-exclusive upper bound.  The spawn scheme produces
    statistically independent SeedSequence streams instead; executions for a
    given master seed are still fully deterministic, but differ from runs
    recorded under the old scheme.
    """

    def test_spawn_streams_deterministic(self, rng):
        config = make_config(6)
        placement = standard_instance(6, 6, 8, seed=0)
        draws = []
        for _ in range(2):
            nodes = build_nodes(
                IndexedBroadcastNode, config, placement, np.random.default_rng(42)
            )
            draws.append([node.rng.integers(0, 2**32) for node in nodes])
        assert draws[0] == draws[1]

    def test_spawn_streams_differ_across_nodes(self):
        config = make_config(6)
        placement = standard_instance(6, 6, 8, seed=0)
        nodes = build_nodes(
            IndexedBroadcastNode, config, placement, np.random.default_rng(42)
        )
        first_draws = {int(node.rng.integers(0, 2**63)) for node in nodes}
        assert len(first_draws) == len(nodes)

    def test_full_run_deterministic_for_fixed_seed(self):
        config = make_config(8)
        first = _run(IndexedBroadcastNode, config, BottleneckAdversary(), engine="auto")
        second = _run(IndexedBroadcastNode, config, BottleneckAdversary(), engine="auto")
        assert dataclasses.asdict(first.metrics) == dataclasses.asdict(second.metrics)
