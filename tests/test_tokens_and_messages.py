"""Unit tests for tokens, placements and message size accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tokens import (
    CodedMessage,
    ControlMessage,
    MessageBudget,
    MessageSizeExceeded,
    Token,
    TokenForwardMessage,
    TokenId,
    make_tokens,
    one_token_per_node,
    place_tokens,
    uid_bits,
)


class TestTokenId:
    def test_ordering_is_lexicographic(self):
        assert TokenId(0, 1) < TokenId(1, 0)
        assert TokenId(2, 0) < TokenId(2, 5)

    def test_bits_positive(self):
        assert TokenId(0, 0).bits >= 2
        assert TokenId(1023, 3).bits >= 10

    def test_hashable_and_equal(self):
        assert TokenId(3, 1) == TokenId(3, 1)
        assert len({TokenId(3, 1), TokenId(3, 1), TokenId(3, 2)}) == 2


class TestToken:
    def test_payload_must_fit(self):
        with pytest.raises(ValueError):
            Token(TokenId(0, 0), payload=256, size_bits=8)
        with pytest.raises(ValueError):
            Token(TokenId(0, 0), payload=-1, size_bits=8)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Token(TokenId(0, 0), payload=0, size_bits=0)

    def test_payload_bits_roundtrip(self):
        t = Token(TokenId(1, 0), payload=0b1011, size_bits=4)
        assert t.payload_bits() == (1, 1, 0, 1)


class TestTokenFactories:
    def test_make_tokens_count_and_size(self, rng):
        tokens = make_tokens(7, 16, rng)
        assert len(tokens) == 7
        assert all(t.size_bits == 16 for t in tokens)
        assert len({t.token_id for t in tokens}) == 7

    def test_make_tokens_sequence_numbers_per_origin(self, rng):
        tokens = make_tokens(4, 8, rng, origins=[0, 0, 1, 0])
        sequences = [t.token_id.sequence for t in tokens if t.token_id.origin == 0]
        assert sorted(sequences) == [0, 1, 2]

    def test_make_tokens_origin_mismatch(self, rng):
        with pytest.raises(ValueError):
            make_tokens(3, 8, rng, origins=[0, 1])

    def test_one_token_per_node(self, rng):
        placement = one_token_per_node(9, 8, rng)
        assert placement.k == 9
        for token in placement.tokens:
            assert placement.holders[token.token_id] == frozenset({token.token_id.origin})

    def test_place_tokens_copies(self, rng):
        tokens = make_tokens(5, 8, rng)
        placement = place_tokens(tokens, 20, rng, copies=3)
        for token in tokens:
            holders = placement.holders[token.token_id]
            assert len(holders) >= 3
            assert token.token_id.origin in holders

    def test_placement_queries(self, rng):
        placement = one_token_per_node(6, 8, rng)
        assert placement.token_size_bits == 8
        assert len(placement.all_ids()) == 6
        assert len(placement.tokens_at(3)) == 1
        assert placement.by_id()[placement.tokens[0].token_id] == placement.tokens[0]


class TestMessageSizes:
    def test_uid_bits(self):
        assert uid_bits(2) == 1
        assert uid_bits(16) == 4
        assert uid_bits(17) == 5

    def test_token_forward_message_size(self):
        t1 = Token(TokenId(1, 0), payload=3, size_bits=8)
        t2 = Token(TokenId(2, 0), payload=9, size_bits=8)
        msg = TokenForwardMessage(sender=0, tokens=(t1, t2))
        assert msg.size_bits == (t1.token_id.bits + 8) + (t2.token_id.bits + 8)

    def test_empty_forward_message_is_zero_bits(self):
        assert TokenForwardMessage(sender=0, tokens=()).size_bits == 0

    def test_coded_message_header_and_payload(self):
        msg = CodedMessage(
            sender=1,
            coefficients=(1, 0, 1, 1),
            payload=(1, 0, 0, 0, 1, 1, 0, 1),
            field_order=2,
            generation=3,
        )
        assert msg.header_bits == 4
        assert msg.payload_bits == 8
        assert msg.size_bits == 4 + 8 + 2  # + generation tag bits

    def test_coded_message_larger_field_costs_more(self):
        gf2 = CodedMessage(sender=0, coefficients=(1,) * 10, payload=(1,) * 8, field_order=2)
        gf257 = CodedMessage(sender=0, coefficients=(1,) * 10, payload=(1,) * 8, field_order=257)
        assert gf257.header_bits == 9 * 10
        assert gf257.size_bits > gf2.size_bits

    def test_coded_message_with_dimension_ids(self):
        tid = TokenId(3, 1)
        msg = CodedMessage(
            sender=0, coefficients=(1, 1), payload=(0,), field_order=2,
            dimension_ids=(tid, tid),
        )
        assert msg.header_bits == 2 + 2 * tid.bits

    def test_control_message_sizes(self):
        msg = ControlMessage(sender=0, fields={"count": 7, "leader": 3})
        # 2 field tags (4 bits each) + 3 bits + 2 bits
        assert msg.size_bits == 4 + 3 + 4 + 2

    def test_control_message_with_token_id_and_lists(self):
        tid = TokenId(2, 1)
        msg = ControlMessage(sender=0, fields={"ids": (tid, tid), "flag": True})
        assert msg.size_bits == 4 + 2 * tid.bits + 4 + 1

    def test_control_message_rejects_unknown_type(self):
        msg = ControlMessage(sender=0, fields={"bad": 3.14})
        with pytest.raises(TypeError):
            _ = msg.size_bits


class TestMessageBudget:
    def test_budget_check_passes_within_limit(self):
        budget = MessageBudget(b=64, slack=2.0)
        msg = ControlMessage(sender=0, fields={"x": (1 << 100) - 1})
        budget.check(msg)  # 104 bits <= 128

    def test_budget_check_rejects_oversized(self):
        budget = MessageBudget(b=16, slack=1.0)
        msg = ControlMessage(sender=0, fields={"x": (1 << 40) - 1})
        with pytest.raises(MessageSizeExceeded):
            budget.check(msg)

    def test_budget_validate_parameters(self):
        MessageBudget(b=8).validate_parameters(100)
        with pytest.raises(ValueError):
            MessageBudget(b=3).validate_parameters(100)

    def test_budget_invalid_construction(self):
        with pytest.raises(ValueError):
            MessageBudget(b=0)
        with pytest.raises(ValueError):
            MessageBudget(b=8, slack=0.5)

    def test_limit_bits(self):
        assert MessageBudget(b=10, slack=3.0).limit_bits == 30
