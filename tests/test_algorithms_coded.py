"""Tests for the network-coded dissemination protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    CentralizedCodedNode,
    GreedyForwardNode,
    IndexedBroadcastNode,
    NaiveCodedNode,
    PriorityForwardNode,
    TokenForwardingNode,
    block_bits,
    decode_block,
    encode_block,
    max_tokens_per_block,
    token_slot_bits,
)
from repro.analysis import indexed_broadcast_rounds
from repro.network import (
    BottleneckAdversary,
    PathShuffleAdversary,
    RandomConnectedAdversary,
    RandomTreeAdversary,
    StaticAdversary,
    TokenIsolationAdversary,
    path_graph,
)
from repro.simulation import run_dissemination
from repro.tokens import MessageBudget, make_tokens, one_token_per_node, place_tokens
from tests.conftest import make_config


class TestBlockPacking:
    def test_roundtrip_single_token(self, rng):
        config = make_config(8)
        tokens = make_tokens(1, 8, rng)
        value = encode_block(config, tokens, tokens_per_block=1)
        assert decode_block(config, value, tokens_per_block=1) == tokens

    def test_roundtrip_multiple_tokens(self, rng):
        config = make_config(16)
        tokens = make_tokens(5, 8, rng)
        value = encode_block(config, tokens, tokens_per_block=8)
        assert decode_block(config, value, tokens_per_block=8) == tokens

    def test_partial_block(self, rng):
        config = make_config(16)
        tokens = make_tokens(2, 8, rng)
        value = encode_block(config, tokens, tokens_per_block=4)
        decoded = decode_block(config, value, tokens_per_block=4)
        assert decoded == tokens

    def test_empty_block(self):
        config = make_config(8)
        assert decode_block(config, encode_block(config, [], 3), 3) == []

    def test_capacity_overflow_raises(self, rng):
        config = make_config(8)
        tokens = make_tokens(3, 8, rng)
        with pytest.raises(ValueError):
            encode_block(config, tokens, tokens_per_block=2)

    def test_wrong_token_size_raises(self, rng):
        config = make_config(8, d=16)
        tokens = make_tokens(1, 8, rng)
        with pytest.raises(ValueError):
            encode_block(config, tokens, tokens_per_block=1)

    def test_block_bits_consistent_with_slots(self):
        config = make_config(8)
        assert block_bits(config, 3) == 16 + 3 * token_slot_bits(config)
        assert max_tokens_per_block(config, block_bits(config, 3)) >= 3

    def test_block_bits_rejects_zero_capacity(self):
        config = make_config(8)
        with pytest.raises(ValueError):
            block_bits(config, 0)


class TestIndexedBroadcast:
    @pytest.mark.parametrize("adversary_factory", [
        lambda: RandomConnectedAdversary(seed=1),
        lambda: PathShuffleAdversary(seed=2),
        lambda: BottleneckAdversary(),
        lambda: RandomTreeAdversary(seed=3),
    ])
    def test_completes_and_correct(self, rng, adversary_factory):
        n = 10
        config = make_config(n, b=n + 32)
        placement = one_token_per_node(n, 8, rng)
        result = run_dissemination(IndexedBroadcastNode, config, placement, adversary_factory())
        assert result.completed and result.correct

    def test_rounds_linear_in_n_plus_k(self, rng):
        # Lemma 5.3: O(n + k) rounds; with q = 2 the constant is small.
        n = 24
        config = make_config(n, b=n + 32)
        placement = one_token_per_node(n, 8, rng)
        result = run_dissemination(IndexedBroadcastNode, config, placement, BottleneckAdversary())
        assert result.rounds <= 6 * indexed_broadcast_rounds(n, n)

    def test_explicit_index_map(self, rng):
        n, k = 8, 4
        tokens = make_tokens(k, 8, rng)
        placement = place_tokens(tokens, n, rng)
        index_of = {t.token_id: i for i, t in enumerate(sorted(tokens, key=lambda t: t.token_id))}
        config = make_config(n, k=k, b=64, extra={"index_of": index_of})
        result = run_dissemination(IndexedBroadcastNode, config, placement, BottleneckAdversary())
        assert result.completed and result.correct

    def test_against_token_isolation_adversary(self, rng):
        n = 10
        placement = one_token_per_node(n, 8, rng)
        target = placement.tokens[0].token_id
        config = make_config(n, b=n + 32)
        result = run_dissemination(
            IndexedBroadcastNode, config, placement, TokenIsolationAdversary(target)
        )
        assert result.completed and result.correct

    def test_nodes_report_finished_after_decoding(self, rng):
        n = 8
        config = make_config(n, b=n + 32)
        placement = one_token_per_node(n, 8, rng)
        result = run_dissemination(
            IndexedBroadcastNode, config, placement, RandomConnectedAdversary(seed=4),
            stop_at_completion=True,
        )
        assert all(node.finished() for node in result.nodes)
        assert all(node.coded_rank() >= n for node in result.nodes)

    def test_message_size_matches_lemma(self, rng):
        # Messages are k lg q + d (+ id/count overhead we account explicitly).
        n = 12
        config = make_config(n, b=n + 40)
        placement = one_token_per_node(n, 8, rng)
        result = run_dissemination(
            IndexedBroadcastNode, config, placement, RandomConnectedAdversary(seed=6)
        )
        assert result.metrics.max_message_bits <= config.budget.limit_bits
        assert result.metrics.max_message_bits >= n  # the coefficient header alone


class TestGreedyForward:
    @pytest.mark.parametrize("adversary_factory", [
        lambda: RandomConnectedAdversary(seed=1),
        lambda: PathShuffleAdversary(seed=5),
        lambda: BottleneckAdversary(),
    ])
    def test_completes_and_correct(self, rng, adversary_factory):
        n = 10
        config = make_config(n, d=8, b=48)
        placement = one_token_per_node(n, 8, rng)
        result = run_dissemination(GreedyForwardNode, config, placement, adversary_factory())
        assert result.completed and result.correct

    def test_concentrated_tokens_instance(self, rng):
        # All k tokens start at the first two nodes: gathering is trivial but
        # dissemination still has to reach everyone.
        n, k = 12, 6
        tokens = make_tokens(k, 8, rng, origins=[0, 0, 0, 1, 1, 1])
        placement = place_tokens(tokens, n, rng)
        config = make_config(n, k=k, d=8, b=48)
        result = run_dissemination(GreedyForwardNode, config, placement, BottleneckAdversary())
        assert result.completed and result.correct

    def test_beats_forwarding_with_large_messages(self, rng):
        # With b >> d, greedy-forward should need clearly fewer rounds than
        # phase-based token forwarding against the same adversary.
        n = 20
        d = 8
        b = 160
        placement = one_token_per_node(n, d, rng)
        coded = run_dissemination(
            GreedyForwardNode, make_config(n, d=d, b=b), placement, BottleneckAdversary()
        )
        forwarding = run_dissemination(
            TokenForwardingNode, make_config(n, d=d, b=d), placement, BottleneckAdversary()
        )
        assert coded.completed and forwarding.completed
        assert coded.rounds < forwarding.rounds


class TestNaiveCoded:
    def test_completes_and_correct(self, rng):
        n = 8
        config = make_config(n, d=8, b=48)
        placement = one_token_per_node(n, 8, rng)
        result = run_dissemination(NaiveCodedNode, config, placement, RandomConnectedAdversary(seed=2))
        assert result.completed and result.correct

    def test_completes_under_bottleneck(self, rng):
        n = 8
        config = make_config(n, d=8, b=48)
        placement = one_token_per_node(n, 8, rng)
        result = run_dissemination(NaiveCodedNode, config, placement, BottleneckAdversary())
        assert result.completed and result.correct


class TestPriorityForward:
    @pytest.mark.parametrize("adversary_factory", [
        lambda: RandomConnectedAdversary(seed=3),
        lambda: BottleneckAdversary(),
    ])
    def test_completes_and_correct(self, rng, adversary_factory):
        n = 10
        config = make_config(n, d=8, b=64)
        placement = one_token_per_node(n, 8, rng)
        result = run_dissemination(PriorityForwardNode, config, placement, adversary_factory())
        assert result.completed and result.correct

    def test_handles_concentrated_instance(self, rng):
        n, k = 10, 5
        tokens = make_tokens(k, 8, rng, origins=[0] * k)
        placement = place_tokens(tokens, n, rng)
        config = make_config(n, k=k, d=8, b=64)
        result = run_dissemination(PriorityForwardNode, config, placement, PathShuffleAdversary(seed=8))
        assert result.completed and result.correct


class TestCentralized:
    def test_completes_in_linear_time(self, rng):
        n = 20
        config = make_config(n, d=8, b=16)
        placement = one_token_per_node(n, 8, rng)
        result = run_dissemination(CentralizedCodedNode, config, placement, BottleneckAdversary())
        assert result.completed and result.correct
        # Corollary 2.6: Theta(n); allow the q = 2 constant.
        assert result.rounds <= 6 * n

    def test_header_is_free(self, rng):
        n = 16
        config = make_config(n, d=8, b=16)
        placement = one_token_per_node(n, 8, rng)
        result = run_dissemination(
            CentralizedCodedNode, config, placement, RandomConnectedAdversary(seed=1)
        )
        # The charged message size excludes the n-symbol coefficient header,
        # so it stays near the payload size even though k = 16 dimensions are coded.
        assert result.metrics.max_message_bits < 64

    def test_centralized_faster_than_distributed_with_same_budget(self, rng):
        n = 16
        b = 16  # too small for the distributed header, fine for centralized
        placement = one_token_per_node(n, 8, rng)
        centralized = run_dissemination(
            CentralizedCodedNode, make_config(n, d=8, b=b), placement, BottleneckAdversary()
        )
        forwarding = run_dissemination(
            TokenForwardingNode, make_config(n, d=8, b=b), placement, BottleneckAdversary()
        )
        assert centralized.rounds < forwarding.rounds
