"""Unit tests for vector packing helpers and the GF(2) fast path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gf import (
    GF,
    GF2,
    GF2Basis,
    bits_to_vector,
    concat_vectors,
    int_to_vector,
    is_zero_vector,
    linear_combination,
    pack_bits,
    symbols_needed,
    unit_vector,
    unpack_bits,
    vector_to_bits,
    vector_to_int,
    vectors_equal,
)


class TestSymbolPacking:
    def test_symbols_needed_gf2(self):
        assert symbols_needed(8, 2) == 8
        assert symbols_needed(0, 2) == 0
        assert symbols_needed(1, 2) == 1

    def test_symbols_needed_larger_field(self):
        assert symbols_needed(8, 257) == 1  # one symbol of GF(257) holds 8 bits
        assert symbols_needed(16, 5) == 7  # smallest d' with 5**d' >= 2**16

    def test_symbols_needed_negative_raises(self):
        with pytest.raises(ValueError):
            symbols_needed(-1, 2)

    def test_int_vector_roundtrip_gf2(self):
        f = GF2
        for value in (0, 1, 5, 170, 255):
            vec = int_to_vector(f, value, 8)
            assert vector_to_int(f, vec) == value

    def test_int_vector_roundtrip_gf7(self):
        f = GF(7)
        for value in (0, 6, 48, 342):
            vec = int_to_vector(f, value, 3)
            assert vector_to_int(f, vec) == value

    def test_int_to_vector_overflow_raises(self):
        with pytest.raises(ValueError):
            int_to_vector(GF2, 256, 8)

    def test_int_to_vector_negative_raises(self):
        with pytest.raises(ValueError):
            int_to_vector(GF2, -3, 8)

    def test_bits_roundtrip(self):
        f = GF(3)
        payload = 0b101101
        vec = bits_to_vector(f, payload, 6)
        assert vector_to_bits(f, vec, 6) == payload


class TestVectorHelpers:
    def test_unit_vector(self):
        e2 = unit_vector(GF2, 5, 2)
        assert e2.tolist() == [0, 0, 1, 0, 0]

    def test_unit_vector_out_of_range(self):
        with pytest.raises(IndexError):
            unit_vector(GF2, 3, 3)

    def test_concat(self):
        f = GF(5)
        out = concat_vectors(f, [[1, 2], [3], [4, 0]])
        assert out.tolist() == [1, 2, 3, 4, 0]

    def test_concat_empty(self):
        assert concat_vectors(GF2, []).size == 0

    def test_linear_combination_gf2_is_xor(self):
        f = GF2
        v1 = f.asarray([1, 0, 1, 1])
        v2 = f.asarray([1, 1, 0, 1])
        out = linear_combination(f, [1, 1], [v1, v2])
        assert out.tolist() == [0, 1, 1, 0]

    def test_linear_combination_coefficient_mismatch(self):
        with pytest.raises(ValueError):
            linear_combination(GF2, [1], [GF2.asarray([1]), GF2.asarray([0])])

    def test_linear_combination_length_mismatch(self):
        with pytest.raises(ValueError):
            linear_combination(GF2, [1, 1], [GF2.asarray([1, 0]), GF2.asarray([0])])

    def test_linear_combination_empty_raises(self):
        with pytest.raises(ValueError):
            linear_combination(GF2, [], [])

    def test_is_zero_vector(self):
        assert is_zero_vector([0, 0, 0])
        assert not is_zero_vector([0, 1, 0])
        assert is_zero_vector(np.zeros(0))

    def test_vectors_equal(self):
        assert vectors_equal([1, 2, 3], np.array([1, 2, 3]))
        assert not vectors_equal([1, 2], [1, 2, 3])
        assert not vectors_equal([1, 2, 3], [1, 2, 4])


class TestPackUnpack:
    def test_pack_unpack_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        mask = pack_bits(bits)
        assert unpack_bits(mask, len(bits)).tolist() == bits

    def test_pack_empty(self):
        assert pack_bits([]) == 0

    def test_unpack_truncates(self):
        assert unpack_bits(0b1111, 2).tolist() == [1, 1]


class TestGF2Basis:
    def test_insert_innovative(self):
        basis = GF2Basis(4)
        assert basis.insert([1, 0, 0, 0])
        assert basis.insert([0, 1, 0, 0])
        assert basis.rank == 2

    def test_insert_dependent_returns_false(self):
        basis = GF2Basis(4)
        basis.insert([1, 1, 0, 0])
        basis.insert([0, 1, 1, 0])
        assert not basis.insert([1, 0, 1, 0])  # sum of the two
        assert basis.rank == 2

    def test_insert_zero_vector(self):
        basis = GF2Basis(4)
        assert not basis.insert([0, 0, 0, 0])
        assert basis.rank == 0

    def test_contains(self):
        basis = GF2Basis(3)
        basis.insert([1, 1, 0])
        basis.insert([0, 0, 1])
        assert basis.contains([1, 1, 1])
        assert not basis.contains([1, 0, 0])

    def test_extend_counts_innovative(self):
        basis = GF2Basis(4)
        added = basis.extend([[1, 0, 0, 0], [1, 0, 0, 0], [0, 1, 0, 0]])
        assert added == 2

    def test_full_rank(self):
        basis = GF2Basis(5)
        for i in range(5):
            vec = [0] * 5
            vec[i] = 1
            basis.insert(vec)
        assert basis.rank == 5
        assert basis.contains([1, 1, 1, 1, 1])

    def test_basis_matrix_shape(self):
        basis = GF2Basis(6)
        basis.insert([1, 0, 1, 0, 0, 0])
        basis.insert([0, 1, 0, 0, 1, 0])
        m = basis.basis_matrix()
        assert m.shape == (2, 6)

    def test_senses_definition(self):
        # A node senses mu iff some received vector is non-orthogonal to mu.
        basis = GF2Basis(4)
        basis.insert([1, 1, 0, 0])
        assert basis.senses([1, 0, 0, 0])  # dot = 1
        assert not basis.senses([1, 1, 0, 0])  # dot = 0 (mod 2)
        assert not basis.senses([0, 0, 1, 1])

    def test_senses_empty_basis(self):
        assert not GF2Basis(4).senses([1, 0, 0, 0])

    def test_reduced_echelon_decodes_identity(self):
        basis = GF2Basis(4)
        basis.insert([1, 1, 1, 0])
        basis.insert([0, 1, 1, 1])
        basis.insert([0, 0, 1, 1])
        basis.insert([1, 0, 0, 1])
        reduced = basis.reduced_echelon_matrix()
        # The basis keys rows by their highest set bit; after full reduction
        # each row's pivot (highest set coordinate) appears in no other row.
        pivots = []
        for row in reduced:
            ones = [i for i, bit in enumerate(row.tolist()) if bit]
            pivots.append(max(ones))
        assert len(set(pivots)) == len(pivots)
        for row_index, pivot in enumerate(pivots):
            for other_index, row in enumerate(reduced):
                if other_index != row_index:
                    assert row.tolist()[pivot] == 0

    def test_copy_is_independent(self):
        basis = GF2Basis(3)
        basis.insert([1, 0, 0])
        clone = basis.copy()
        clone.insert([0, 1, 0])
        assert basis.rank == 1
        assert clone.rank == 2
