"""Unit tests for stability measures, MIS algorithms and graph patching."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.network import (
    compute_patches,
    greedy_mis,
    is_maximal_independent_set,
    is_t_interval_connected,
    is_t_stable,
    luby_mis,
    max_interval_connectivity,
    max_stability,
    path_graph,
    power_graph,
    random_connected_graph,
    ring_graph,
    stable_intersection,
    star_graph,
)


class TestStabilityMeasures:
    def test_constant_sequence_is_stable_for_all_t(self):
        g = path_graph(6)
        seq = [g] * 8
        assert is_t_stable(seq, 1)
        assert is_t_stable(seq, 4)
        assert max_stability(seq) == 8

    def test_alternating_sequence_only_1_stable(self):
        seq = [path_graph(5), star_graph(5), path_graph(5), star_graph(5)]
        assert is_t_stable(seq, 1)
        assert not is_t_stable(seq, 2)
        assert max_stability(seq) == 1

    def test_block_stable_sequence(self):
        a, b = path_graph(5), star_graph(5)
        seq = [a, a, a, b, b, b]
        assert is_t_stable(seq, 3)
        assert not is_t_stable(seq, 2)  # blocks [a,a],[a,b] differ internally

    def test_invalid_stability_raises(self):
        with pytest.raises(ValueError):
            is_t_stable([path_graph(3)], 0)

    def test_stable_intersection(self):
        a = path_graph(4)          # 0-1-2-3
        b = ring_graph(4)          # cycle
        common = stable_intersection([a, b])
        assert set(map(frozenset, common.edges)) == {
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({2, 3}),
        }

    def test_stable_intersection_empty_input(self):
        with pytest.raises(ValueError):
            stable_intersection([])

    def test_interval_connectivity_static(self):
        seq = [ring_graph(6)] * 5
        assert is_t_interval_connected(seq, 5)
        assert max_interval_connectivity(seq) == 5

    def test_interval_connectivity_fails_without_common_subgraph(self):
        # Two edge-disjoint spanning trees: their intersection is disconnected.
        a = path_graph(4, order=[0, 1, 2, 3])
        b = path_graph(4, order=[1, 3, 0, 2])
        assert is_t_interval_connected([a], 1)
        assert not is_t_interval_connected([a, b], 2)

    def test_t_stable_blocks_are_interval_connected_within_a_block(self):
        a = random_connected_graph(10, np.random.default_rng(0))
        b = random_connected_graph(10, np.random.default_rng(1))
        seq = [a] * 4 + [b] * 4
        assert is_t_stable(seq, 4)
        # Within one aligned block the topology is literally constant, hence
        # trivially T-interval connected; across block boundaries it need not be.
        assert is_t_interval_connected(seq[:4], 4)
        assert is_t_interval_connected(seq[4:], 4)


class TestMis:
    def test_luby_produces_maximal_independent_set(self, rng):
        for seed in range(3):
            g = random_connected_graph(20, np.random.default_rng(seed))
            result = luby_mis(g, rng)
            assert is_maximal_independent_set(g, result.members)

    def test_luby_on_complete_graph_single_node(self, rng):
        g = nx.complete_graph(7)
        result = luby_mis(g, rng)
        assert len(result.members) == 1

    def test_luby_on_empty_graph_all_nodes(self, rng):
        g = nx.Graph()
        g.add_nodes_from(range(5))
        result = luby_mis(g, rng)
        assert result.members == frozenset(range(5))

    def test_luby_round_count_logarithmic_ish(self, rng):
        g = random_connected_graph(60, np.random.default_rng(3))
        result = luby_mis(g, rng)
        assert result.rounds <= 30

    def test_greedy_mis_maximal_independent(self):
        for seed in range(3):
            g = random_connected_graph(25, np.random.default_rng(seed))
            result = greedy_mis(g)
            assert is_maximal_independent_set(g, result.members)

    def test_greedy_mis_deterministic(self):
        g = random_connected_graph(15, np.random.default_rng(5))
        assert greedy_mis(g).members == greedy_mis(g).members

    def test_greedy_mis_on_star_prefers_low_id(self):
        g = star_graph(6, center=0)
        result = greedy_mis(g)
        assert result.members == frozenset({0})

    def test_is_maximal_independent_set_detects_violations(self):
        g = path_graph(4)
        assert not is_maximal_independent_set(g, {0, 1})     # not independent
        assert not is_maximal_independent_set(g, {0})        # not maximal
        assert is_maximal_independent_set(g, {0, 2})          # wait: 3 uncovered? 2-3 edge covers 3
        assert is_maximal_independent_set(g, {1, 3})


class TestPowerGraphAndPatches:
    def test_power_graph_distance_2(self):
        g = path_graph(5)
        p = power_graph(g, 2)
        assert p.has_edge(0, 2)
        assert not p.has_edge(0, 3)

    def test_power_graph_invalid_distance(self):
        with pytest.raises(ValueError):
            power_graph(path_graph(3), 0)

    def test_patches_cover_all_nodes_exactly_once(self, rng):
        g = random_connected_graph(30, np.random.default_rng(2))
        decomposition = compute_patches(g, radius=2, rng=rng)
        seen = []
        for patch in decomposition.patches:
            seen.extend(patch.members)
        assert sorted(seen) == list(range(30))

    def test_patch_leaders_form_independent_set_in_power_graph(self, rng):
        g = random_connected_graph(24, np.random.default_rng(4))
        radius = 2
        decomposition = compute_patches(g, radius=radius, rng=rng)
        powered = power_graph(g, radius)
        leaders = decomposition.leaders
        for u in leaders:
            for v in leaders:
                if u != v:
                    assert not powered.has_edge(u, v)

    def test_patch_diameter_bound(self, rng):
        g = random_connected_graph(30, np.random.default_rng(6))
        radius = 3
        decomposition = compute_patches(g, radius=radius, rng=rng)
        for patch in decomposition.patches:
            assert patch.height <= radius  # tree depth <= D (Section 8.1 item 2)

    def test_patches_are_connected_subgraphs(self, rng):
        g = random_connected_graph(30, np.random.default_rng(7))
        decomposition = compute_patches(g, radius=2, rng=rng)
        for patch in decomposition.patches:
            sub = g.subgraph(patch.members)
            assert nx.is_connected(sub)

    def test_patch_tree_parents_are_edges(self, rng):
        g = random_connected_graph(20, np.random.default_rng(8))
        decomposition = compute_patches(g, radius=2, rng=rng)
        for patch in decomposition.patches:
            for node, parent in patch.parent.items():
                if node != patch.leader:
                    assert g.has_edge(node, parent)

    def test_patch_children_consistent_with_parents(self, rng):
        g = random_connected_graph(18, np.random.default_rng(9))
        decomposition = compute_patches(g, radius=2, rng=rng)
        for patch in decomposition.patches:
            kids = patch.children()
            for node, children in kids.items():
                for child in children:
                    assert patch.parent[child] == node

    def test_patch_of_and_membership(self, rng):
        g = random_connected_graph(15, np.random.default_rng(10))
        decomposition = compute_patches(g, radius=2, rng=rng)
        membership = decomposition.membership()
        for node in range(15):
            assert decomposition.patch_of(node).leader == membership[node]
        with pytest.raises(KeyError):
            decomposition.patch_of(99)

    def test_deterministic_patching_needs_no_rng(self):
        g = random_connected_graph(20, np.random.default_rng(11))
        decomposition = compute_patches(g, radius=2, deterministic=True)
        seen = sorted(v for p in decomposition.patches for v in p.members)
        assert seen == list(range(20))

    def test_randomized_patching_requires_rng(self):
        g = path_graph(6)
        with pytest.raises(ValueError):
            compute_patches(g, radius=1)

    def test_patching_rejects_disconnected(self, rng):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError):
            compute_patches(g, radius=1, rng=rng)

    def test_min_patch_size_reasonable_on_path(self, rng):
        # On a long path with radius D, patches have at least ~D/2 nodes
        # (Section 8.1 item 3) except possibly tiny boundary effects.
        g = path_graph(40)
        radius = 4
        decomposition = compute_patches(g, radius=radius, rng=rng)
        assert decomposition.min_patch_size >= radius // 2
