"""Self-tests for the repro.lint contract linter.

Every shipped rule gets at least one fixture proving it fires and one
proving the ``# repro: allow[...]`` suppression silences it (the
acceptance contract for the lint gate), plus engine-level coverage:
baseline fingerprints surviving line shifts, directive validation,
config loading, reporters, CLI exit codes, and the standing requirement
that the repository's own tree lints clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    LintConfig,
    load_config,
    run_lint,
    to_json,
)
from repro.lint.__main__ import main as lint_main
from repro.lint.engine import categorize, lint_source
from repro.lint.rules import RULE_REGISTRY, all_rules

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent
CONFIG = LintConfig(root=FIXTURES)


def lint_fixture(name: str, category: str = "src"):
    path = FIXTURES / name
    return lint_source(path, path.read_text(), CONFIG, category=category)


def line_of(name: str, needle: str, occurrence: int = 0) -> int:
    """1-based line number of the ``occurrence``-th line containing ``needle``."""
    hits = [
        i
        for i, text in enumerate((FIXTURES / name).read_text().splitlines(), 1)
        if needle in text
    ]
    return hits[occurrence]


def rule_lines(findings, rule: str) -> set[int]:
    return {f.line for f in findings if f.rule == rule}


# ----------------------------------------------------------------------
# rule catalogue sanity
# ----------------------------------------------------------------------


def test_rule_registry_shape():
    ids = sorted(RULE_REGISTRY)
    assert ids == [
        "REP101",
        "REP102",
        "REP103",
        "REP201",
        "REP301",
        "REP302",
        "REP303",
        "REP401",
        "REP402",
        "REP403",
    ]
    slugs = {rule.name for rule in all_rules()}
    assert len(slugs) == len(ids), "rule slugs must be unique"
    for rule in all_rules():
        assert rule.description
        assert rule.categories <= {"src", "bench", "test"}


# ----------------------------------------------------------------------
# determinism rules
# ----------------------------------------------------------------------


def test_rep101_fires_and_suppresses():
    active, suppressed = lint_fixture("determinism_bad.py")
    assert line_of("determinism_bad.py", "import random") in rule_lines(active, "REP101")
    assert line_of("determinism_bad.py", "random.choice") in rule_lines(active, "REP101")
    allowed = line_of("determinism_bad.py", "allow[REP101]")
    assert allowed not in rule_lines(active, "REP101")
    assert allowed in rule_lines(suppressed, "REP101")


def test_rep102_fires_on_seedless_and_global_state_only():
    active, suppressed = lint_fixture("determinism_bad.py")
    lines = rule_lines(active, "REP102")
    assert line_of("determinism_bad.py", "np.random.default_rng()") in lines
    assert line_of("determinism_bad.py", "np.random.seed(0)") in lines
    assert line_of("determinism_bad.py", "np.random.randint") in lines
    assert line_of("determinism_bad.py", "np.random.default_rng(1234)") not in lines
    assert line_of("determinism_bad.py", "allow[REP102]") in rule_lines(suppressed, "REP102")


def test_rep102_fires_inside_adaptive_fault_strategies():
    """A FaultStrategy.plan_round drawing outside the bound rng trips CI."""
    active, suppressed = lint_fixture("strategy_bad.py")
    lines = rule_lines(active, "REP102")
    assert line_of("strategy_bad.py", "np.random.default_rng()") in lines
    assert line_of("strategy_bad.py", "np.random.random()") in lines
    # the honest strategy draws only from the generator the layer passes in
    assert line_of("strategy_bad.py", "if rng.random() < 0.5:") not in lines
    assert line_of("strategy_bad.py", "rng.integers(0, 4, size=1)") not in lines
    waived = line_of("strategy_bad.py", "np.random.default_rng()", occurrence=1)
    assert waived not in lines
    assert waived in rule_lines(suppressed, "REP102")


def test_rep102_fires_inside_state_aware_fault_strategies():
    """A state-aware plan_round drawing outside the bound rng trips CI.

    The read-only StateView is for targeting only; randomness must still
    flow from the ``rng`` argument even when the draw is keyed off live
    protocol state.
    """
    active, suppressed = lint_fixture("state_strategy_bad.py")
    lines = rule_lines(active, "REP102")
    assert line_of("state_strategy_bad.py", "np.random.default_rng()") in lines
    assert line_of("state_strategy_bad.py", "np.random.random()") in lines
    # the honest strategy reads state but draws only from the bound rng
    assert line_of("state_strategy_bad.py", "if rng.random() < 0.5:") not in lines
    assert (
        line_of("state_strategy_bad.py", "rng.integers(0, frontier + 1, size=1)")
        not in lines
    )
    waived = line_of("state_strategy_bad.py", "np.random.default_rng()", occurrence=1)
    assert waived not in lines
    assert waived in rule_lines(suppressed, "REP102")


def test_rep103_fires_in_src_not_bench():
    active, _ = lint_fixture("determinism_bad.py")
    lines = rule_lines(active, "REP103")
    assert line_of("determinism_bad.py", "time.perf_counter()") in lines
    assert line_of("determinism_bad.py", "os.urandom(8)") in lines
    # previous-line suppression form
    allowed = line_of("determinism_bad.py", "time.perf_counter()", occurrence=1)
    assert allowed not in lines
    bench_active, _ = lint_fixture("determinism_bad.py", category="bench")
    assert not rule_lines(bench_active, "REP103"), "benchmarks may time themselves"
    assert rule_lines(bench_active, "REP101"), "stdlib random stays banned in bench"


def test_rep103_fires_outside_the_clock_seam():
    """Bare wall-clock reads outside repro.obs.clock.SystemClock trip CI.

    The Clock seam is the single sanctioned REP103 exception: only the
    justified inline ``allow`` on ``SystemClock.now`` survives.  A
    homegrown clock class or a self-timing profiler fires like any other
    wall-clock read — the name ``now`` sanctions nothing.
    """
    active, suppressed = lint_fixture("clock_seam_bad.py")
    lines = rule_lines(active, "REP103")
    assert line_of("clock_seam_bad.py", "time.perf_counter()", occurrence=0) in lines
    assert line_of("clock_seam_bad.py", "time.perf_counter()", occurrence=1) in lines
    assert line_of("clock_seam_bad.py", "time.perf_counter() - self.start") in lines
    sanctioned = line_of("clock_seam_bad.py", "# repro: allow[REP103] fixture")
    assert sanctioned not in lines
    assert sanctioned in rule_lines(suppressed, "REP103")


# ----------------------------------------------------------------------
# picklability
# ----------------------------------------------------------------------


def test_rep201_fires_on_lambda_closure_and_factory_returns():
    active, suppressed = lint_fixture("factories_bad.py")
    lines = rule_lines(active, "REP201")
    assert line_of("factories_bad.py", 'Scenario("broken", build=lambda') in lines
    assert line_of("factories_bad.py", 'register_scenario(Scenario("broken", build=nested_build))') in lines
    assert line_of("factories_bad.py", "return lambda: (name, n, seed)") in lines
    assert line_of("factories_bad.py", "return build") in lines
    # module-level callables and partials of them stay clean
    assert line_of("factories_bad.py", 'Scenario("fine", build=module_level_build)') not in lines
    assert line_of("factories_bad.py", "partial(module_level_build, 8)") not in lines
    assert line_of("factories_bad.py", "allow[REP201]") in rule_lines(suppressed, "REP201")


def test_rep201_fires_on_unpicklable_fault_model_factories():
    active, _ = lint_fixture("faults_bad.py")
    lines = rule_lines(active, "REP201")
    assert line_of("faults_bad.py", "faults=lambda n, seed:") in lines
    assert line_of("faults_bad.py", "faults=bound_faults") in lines
    assert line_of("faults_bad.py", "return build_model") in lines
    # a module-level fault builder stays clean
    assert line_of("faults_bad.py", "faults=module_level_faults") not in lines


# ----------------------------------------------------------------------
# engine contracts
# ----------------------------------------------------------------------


def test_rep301_requires_supports_and_to_nodes():
    active, suppressed = lint_fixture("kernel_contract.py")
    lines = rule_lines(active, "REP301")
    missing_both = line_of("kernel_contract.py", "class MissingBothKernel")
    missing_to_nodes = line_of("kernel_contract.py", "class MissingToNodesKernel")
    assert missing_both in lines
    assert missing_to_nodes in lines
    messages = [f.message for f in active if f.rule == "REP301"]
    assert sum(1 for f in active if f.rule == "REP301" and f.line == missing_both) == 2
    assert any("to_nodes" in m for m in messages)
    # complete and same-module-inheriting kernels pass
    assert line_of("kernel_contract.py", "class CompleteKernel") not in lines
    assert line_of("kernel_contract.py", "class InheritedKernel") not in lines
    waived = line_of("kernel_contract.py", "class WaivedKernel")
    assert waived not in lines
    assert waived in rule_lines(suppressed, "REP301")


def test_rep302_bans_per_node_objects_outside_to_nodes():
    active, suppressed = lint_fixture("kernels.py")
    lines = rule_lines(active, "REP302")
    assert line_of("kernels.py", "space = Subspace()") in lines
    # to_nodes materialisation is the sanctioned home for scalar objects
    assert line_of("kernels.py", "node.space = Subspace()") not in lines
    assert line_of("kernels.py", "node.message = Message()") not in lines
    assert line_of("kernels.py", "allow[REP302]") in rule_lines(suppressed, "REP302")


def test_rep302_only_in_kernel_modules():
    source = (FIXTURES / "kernels.py").read_text()
    active, _ = lint_source(FIXTURES / "not_a_kernel.py", source, CONFIG, category="src")
    assert not rule_lines(active, "REP302")


def test_rep303_rejects_batch_import_in_algorithms():
    path = FIXTURES / "algorithms" / "coded.py"
    active, _ = lint_source(path, path.read_text(), CONFIG, category="src")
    lines = rule_lines(active, "REP303")
    assert len(lines) == 2  # the import and the instantiation
    # identical code outside algorithms/ is fine
    outside, _ = lint_source(
        FIXTURES / "coded.py", path.read_text(), CONFIG, category="src"
    )
    assert not rule_lines(outside, "REP303")


# ----------------------------------------------------------------------
# hot-path hygiene
# ----------------------------------------------------------------------


def test_rep401_fires_in_element_loops_not_round_loops():
    active, suppressed = lint_fixture("kernels.py")
    lines = rule_lines(active, "REP401")
    assert line_of("kernels.py", "total += int(np.sum(rows[i]))") in lines
    assert line_of("kernels.py", "int(np.sum(rows)) + round_index") not in lines
    allowed = line_of("kernels.py", "allow[REP401]")
    assert allowed not in lines
    assert allowed in rule_lines(suppressed, "REP401")


def test_rep402_flags_division_and_float_literals():
    active, suppressed = lint_fixture("kernels.py")
    lines = rule_lines(active, "REP402")
    assert line_of("kernels.py", "return words / 2") in lines
    assert line_of("kernels.py", "return words * 0.5") in lines
    assert line_of("kernels.py", "return words // 2") not in lines
    assert line_of("kernels.py", "allow[REP402]") in rule_lines(suppressed, "REP402")


def test_rep403_fires_in_src_only():
    active, suppressed = lint_fixture("asserts_bad.py")
    lines = rule_lines(active, "REP403")
    assert line_of("asserts_bad.py", "assert value is not None") in lines
    allowed = line_of("asserts_bad.py", "allow[REP403] fixture")
    assert allowed not in lines
    assert allowed in rule_lines(suppressed, "REP403")
    test_active, _ = lint_fixture("asserts_bad.py", category="test")
    assert not rule_lines(test_active, "REP403"), "tests may assert freely"


# ----------------------------------------------------------------------
# directives (REP001) and engine behaviour
# ----------------------------------------------------------------------


def test_bad_directives_are_reported():
    active, _ = lint_fixture("asserts_bad.py")
    lines = rule_lines(active, "REP001")
    no_reason = line_of("asserts_bad.py", "allow[REP403]", occurrence=1)
    assert no_reason in lines
    # a reason-less allow suppresses nothing: REP403 still fires there
    assert no_reason in rule_lines(active, "REP403")
    assert line_of("asserts_bad.py", "allow[REP999]") in lines
    assert line_of("asserts_bad.py", "allowing everything forever") in lines


def test_directive_text_inside_strings_is_ignored():
    source = '"""docstring mentioning # repro: allow[REP403] syntax."""\n'
    active, suppressed = lint_source(FIXTURES / "doc.py", source, CONFIG, category="src")
    assert not active and not suppressed


def test_syntax_error_becomes_rep000():
    active, _ = lint_source(FIXTURES / "broken.py", "def broken(:\n", CONFIG, category="src")
    assert [f.rule for f in active] == ["REP000"]


def test_categorize():
    assert categorize(Path("src/repro/gf/packed.py")) == "src"
    assert categorize(Path("benchmarks/common.py")) == "bench"
    assert categorize(Path("tests/test_lint.py")) == "test"


def test_select_and_ignore():
    path = FIXTURES / "determinism_bad.py"
    source = path.read_text()
    only_101 = LintConfig(root=FIXTURES, select=("REP101",))
    active, _ = lint_source(path, source, only_101, category="src")
    assert {f.rule for f in active} == {"REP101"}
    by_slug = LintConfig(root=FIXTURES, select=("stdlib-random",))
    active_slug, _ = lint_source(path, source, by_slug, category="src")
    assert {f.rule for f in active_slug} == {"REP101"}
    without = LintConfig(root=FIXTURES, ignore=("REP101", "REP102", "REP103"))
    active2, _ = lint_source(path, source, without, category="src")
    assert not active2


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------


def test_baseline_roundtrip_and_line_shift(tmp_path):
    target = tmp_path / "asserts_bad.py"
    target.write_text((FIXTURES / "asserts_bad.py").read_text())
    config = LintConfig(root=tmp_path, baseline=tmp_path / "baseline.json")
    dirty = run_lint([target], config, category="src")
    assert dirty.findings
    run_lint([target], config, write_baseline=True, category="src")
    clean = run_lint([target], config, category="src")
    assert not clean.findings
    assert len(clean.baselined) == len(dirty.findings)
    # shifting every line down must not invalidate the fingerprints
    target.write_text("# leading comment\n\n" + target.read_text())
    shifted = run_lint([target], config, category="src")
    assert not shifted.findings
    # but a *new* violation is not covered
    target.write_text(target.read_text() + "\n\ndef fresh(v):\n    assert v\n    return v\n")
    fresh = run_lint([target], config, category="src")
    assert [f.rule for f in fresh.findings] == ["REP403"]
    assert "assert v" in fresh.findings[0].line_text


def test_baseline_preserves_reasons_on_rewrite(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("def f(v):\n    assert v\n    return v\n")
    config = LintConfig(root=tmp_path, baseline=tmp_path / "baseline.json")
    run_lint([target], config, write_baseline=True, category="src")
    data = json.loads((tmp_path / "baseline.json").read_text())
    data["entries"][0]["reason"] = "because reasons"
    (tmp_path / "baseline.json").write_text(json.dumps(data))
    run_lint([target], config, write_baseline=True, category="src")
    rewritten = json.loads((tmp_path / "baseline.json").read_text())
    assert rewritten["entries"][0]["reason"] == "because reasons"


def test_duplicate_lines_get_distinct_fingerprints(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("def f(a, b):\n    assert a\n    assert a\n    assert b\n")
    config = LintConfig(root=tmp_path, baseline=tmp_path / "baseline.json")
    dirty = run_lint([target], config, category="src")
    assert len(dirty.findings) == 3
    run_lint([target], config, write_baseline=True, category="src")
    entries = json.loads((tmp_path / "baseline.json").read_text())["entries"]
    assert len({e["fingerprint"] for e in entries}) == 3


# ----------------------------------------------------------------------
# config, reporters, CLI
# ----------------------------------------------------------------------


def test_load_config_reads_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-lint]\n"
        'baseline = "custom-baseline.json"\n'
        'ignore = ["REP403"]\n'
        'kernel-modules = ["mykernels.py"]\n'
        'exclude = ["generated/**"]\n'
    )
    config = load_config(tmp_path)
    assert config.root == tmp_path
    assert config.baseline == tmp_path / "custom-baseline.json"
    assert config.ignore == ("REP403",)
    assert config.kernel_modules == ("mykernels.py",)
    assert config.exclude == ("generated/**",)


def test_repo_pyproject_configures_the_gate():
    config = load_config(REPO_ROOT)
    assert config.baseline == REPO_ROOT / "lint-baseline.json"
    assert "coded_kernels.py" in config.kernel_modules
    assert "packed.py" in config.packed_modules


def test_json_report_shape(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("def f(v):\n    assert v\n    return v\n")
    result = run_lint([target], LintConfig(root=tmp_path), category="src")
    payload = to_json(result)
    assert payload["exit_code"] == 1
    assert payload["counts_by_rule"] == {"REP403": 1}
    (finding,) = payload["findings"]
    assert finding["rule"] == "REP403"
    assert finding["line"] == 2


def test_cli_exit_codes_and_output(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    clean = tmp_path / "clean.py"
    clean.write_text("def f():\n    return 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(v):\n    assert v\n    return v\n")

    assert lint_main([str(clean), "--no-config"]) == 0
    report = tmp_path / "report.json"
    assert lint_main([str(dirty), "--no-config", "--output", str(report)]) == 1
    capsys.readouterr()
    payload = json.loads(report.read_text())
    assert payload["counts_by_rule"] == {"REP403": 1}

    assert lint_main([str(dirty), "--no-config", "--ignore", "REP403"]) == 0
    assert lint_main(["does-not-exist", "--no-config"]) == 2
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "REP403" in out

    # baseline flow through the CLI
    baseline = tmp_path / "baseline.json"
    assert lint_main([str(dirty), "--no-config", "--write-baseline"]) == 2
    assert (
        lint_main([str(dirty), "--no-config", "--baseline", str(baseline), "--write-baseline"])
        == 0
    )
    assert lint_main([str(dirty), "--no-config", "--baseline", str(baseline)]) == 0


def test_cli_json_format(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(v):\n    assert v\n    return v\n")
    assert lint_main([str(dirty), "--no-config", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["exit_code"] == 1


# ----------------------------------------------------------------------
# the gate itself
# ----------------------------------------------------------------------


def test_repository_tree_lints_clean():
    """The CI gate, enforced from tier-1 as well: src + benchmarks are clean."""
    config = load_config(REPO_ROOT)
    result = run_lint([REPO_ROOT / "src", REPO_ROOT / "benchmarks"], config)
    assert result.findings == []
    assert result.files_checked > 50


def test_injected_seedless_rng_fails_the_gate(tmp_path):
    """The acceptance scenario: a seedless default_rng() in kernels.py trips CI."""
    real = (REPO_ROOT / "src" / "repro" / "simulation" / "kernels.py").read_text()
    target = tmp_path / "kernels.py"
    target.write_text(real)
    config = load_config(REPO_ROOT)
    before = lint_source(target, real, config, category="src")[0]
    assert not before
    injected = real + "\n_UNSEEDED = np.random.default_rng()\n"
    target.write_text(injected)
    after = lint_source(target, injected, config, category="src")[0]
    assert [f.rule for f in after] == ["REP102"]
    assert after[0].line == len(injected.splitlines())
