"""Engine-equivalence and contract tests for the coded round kernels.

The coded kernels (:mod:`repro.simulation.coded_kernels`) run whole-network
rounds on the batched GF(2) elimination core; these tests pin byte-identical
:class:`~repro.simulation.metrics.RunMetrics` across the kernel / mask /
legacy engines for

* indexed broadcast — randomized *and* deterministic-schedule — over the
  whole dynamic-scenario catalog and the hand-written adversaries,
* the naive coded algorithm and greedy-forward over representative
  adversaries,

plus the engine-selection rules the new kernels add and the ``to_nodes``
materialisation guarantees (knowledge, delivered sets, post-run compose
stream parity for indexed broadcast).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.algorithms import (
    GreedyForwardNode,
    IndexedBroadcastNode,
    NaiveCodedNode,
)
from repro.coding.deterministic import DeterministicSchedule
from repro.network import (
    BottleneckAdversary,
    RandomConnectedAdversary,
    ShiftedRingAdversary,
    StaticAdversary,
    ring_topology,
)
from repro.scenarios import SCENARIOS, scenario_for
from repro.simulation import kernel_for, run_dissemination, standard_instance
from repro.simulation.kernels import (
    GreedyForwardKernel,
    IndexedBroadcastKernel,
    NaiveCodedKernel,
)
from tests.conftest import make_config

ENGINES = ("kernel", "mask", "legacy")


def _run_all_engines(factory, config, adversary_factory, *, seed=3, **kwargs):
    placement = standard_instance(config.n, config.k, config.token_bits, seed=seed)
    return {
        engine: run_dissemination(
            factory,
            config,
            placement,
            adversary_factory(),
            seed=seed,
            engine=engine,
            track_progress=True,
            **kwargs,
        )
        for engine in ENGINES
    }


def _assert_identical(results, expect_kernel=True):
    kernel = results["kernel"]
    if expect_kernel:
        assert kernel.engine == "kernel"
    reference = dataclasses.asdict(kernel.metrics)
    for engine in ("mask", "legacy"):
        assert dataclasses.asdict(results[engine].metrics) == reference, engine
    for kernel_node, mask_node in zip(kernel.nodes, results["mask"].nodes):
        assert list(kernel_node.known) == list(mask_node.known)
    return kernel


class TestIndexedBroadcastAcrossScenarios:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_randomized_catalog_equivalence(self, scenario):
        n = 10
        config = make_config(n)
        results = _run_all_engines(
            IndexedBroadcastNode, config, scenario_for(scenario, n, seed=5)
        )
        kernel = _assert_identical(results)
        assert kernel.completed and kernel.correct

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_deterministic_schedule_catalog_equivalence(self, scenario):
        # Corollary 6.2's pre-committed coefficient variant over GF(2): no
        # rng draws at all, coefficients straight from the schedule.
        n = 10
        config = make_config(
            n, extra={"deterministic_schedule": DeterministicSchedule(field_order=2, seed=9)}
        )
        results = _run_all_engines(
            IndexedBroadcastNode, config, scenario_for(scenario, n, seed=5)
        )
        _assert_identical(results)

    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: RandomConnectedAdversary(seed=7),
            lambda: ShiftedRingAdversary(),
            lambda: BottleneckAdversary(),
            lambda: StaticAdversary(ring_topology(12)),
        ],
        ids=["random-connected", "shifted-ring", "bottleneck", "static-ring"],
    )
    def test_hand_written_adversaries(self, adversary_factory):
        config = make_config(12)
        results = _run_all_engines(IndexedBroadcastNode, config, adversary_factory)
        kernel = _assert_identical(results)
        assert kernel.completed and kernel.correct

    def test_to_nodes_materialises_stream_compatible_state(self):
        # Post-run, the materialised nodes carry the full received subspace
        # and the synchronised pick buffer, so they compose exactly what the
        # object-engine nodes would next.
        config = make_config(10)
        placement = standard_instance(10, 10, 8, seed=3)
        runs = {
            engine: run_dissemination(
                IndexedBroadcastNode,
                config,
                placement,
                RandomConnectedAdversary(seed=7),
                seed=3,
                engine=engine,
            )
            for engine in ("kernel", "mask")
        }
        next_round = runs["kernel"].metrics.rounds_executed
        for kernel_node, mask_node in zip(runs["kernel"].nodes, runs["mask"].nodes):
            assert kernel_node._decoded == mask_node._decoded
            assert kernel_node.coded_rank() == mask_node.coded_rank()
            assert (
                kernel_node.state.subspace.basis_masks()
                == mask_node.state.subspace.basis_masks()
            )
            assert kernel_node.compose(next_round) == mask_node.compose(next_round)

    def test_run_past_completion_equivalence(self):
        config = make_config(9)
        results = _run_all_engines(
            IndexedBroadcastNode,
            config,
            lambda: RandomConnectedAdversary(seed=2),
            stop_at_completion=False,
            max_rounds=60,
        )
        _assert_identical(results)


class TestNaiveCodedKernel:
    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: RandomConnectedAdversary(seed=7),
            lambda: ShiftedRingAdversary(),
            lambda: StaticAdversary(ring_topology(9)),
            scenario_for("edge_markov", 9, seed=4),
        ],
        ids=["random-connected", "shifted-ring", "static-ring", "edge-markov"],
    )
    def test_engine_equivalence(self, adversary_factory):
        config = make_config(9)
        results = _run_all_engines(NaiveCodedNode, config, adversary_factory)
        kernel = _assert_identical(results)
        assert kernel.completed and kernel.correct
        for kernel_node, mask_node in zip(kernel.nodes, results["mask"].nodes):
            assert kernel_node.delivered == mask_node.delivered
            assert kernel_node._candidate_ids == mask_node._candidate_ids

    def test_mid_flood_round_limit_equivalence(self):
        # Stopping inside a flood window exercises the packed candidate
        # state (and its to_nodes materialisation) mid-phase.
        config = make_config(9)
        results = _run_all_engines(
            NaiveCodedNode,
            config,
            lambda: RandomConnectedAdversary(seed=5),
            max_rounds=5,
        )
        _assert_identical(results)


class TestGreedyForwardKernel:
    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: RandomConnectedAdversary(seed=7),
            lambda: ShiftedRingAdversary(),
            lambda: BottleneckAdversary(),
            scenario_for("waypoint_radio", 10, seed=4),
        ],
        ids=["random-connected", "shifted-ring", "bottleneck", "waypoint"],
    )
    def test_engine_equivalence(self, adversary_factory):
        config = make_config(10)
        results = _run_all_engines(GreedyForwardNode, config, adversary_factory)
        kernel = _assert_identical(results)
        assert kernel.completed and kernel.correct
        for kernel_node, mask_node in zip(kernel.nodes, results["mask"].nodes):
            assert kernel_node.delivered == mask_node.delivered

    def test_exhaustion_parity_past_completion(self):
        # Run until every node terminates locally: the elect flood must
        # report zero remaining tokens and exhaust all nodes on both engines.
        config = make_config(8)
        placement = standard_instance(8, 8, 8, seed=3)
        runs = {
            engine: run_dissemination(
                GreedyForwardNode,
                config,
                placement,
                RandomConnectedAdversary(seed=3),
                seed=3,
                engine=engine,
                stop_at_completion=False,
                max_rounds=900,
            )
            for engine in ("kernel", "mask")
        }
        assert dataclasses.asdict(runs["kernel"].metrics) == dataclasses.asdict(
            runs["mask"].metrics
        )
        for kernel_node, mask_node in zip(runs["kernel"].nodes, runs["mask"].nodes):
            assert kernel_node._exhausted == mask_node._exhausted


class TestCodedEngineSelection:
    def test_auto_prefers_kernel_for_all_coded_protocols(self):
        for factory in (IndexedBroadcastNode, NaiveCodedNode, GreedyForwardNode):
            config = make_config(8)
            placement = standard_instance(8, 8, 8, seed=1)
            result = run_dissemination(
                factory,
                config,
                placement,
                RandomConnectedAdversary(seed=1),
                seed=1,
                engine="auto",
            )
            assert result.engine == "kernel", factory

    def test_greedy_forward_does_not_fall_past_mask_under_auto(self):
        # Even when the kernel declines (degenerate phase windows), auto must
        # resolve to the mask engine, never legacy.
        config = make_config(8, extra={"gather_rounds": 0})
        assert kernel_for(GreedyForwardNode, config) is None
        placement = standard_instance(8, 8, 8, seed=1)
        result = run_dissemination(
            GreedyForwardNode,
            config,
            placement,
            RandomConnectedAdversary(seed=1),
            seed=1,
            engine="auto",
            max_rounds=40,
        )
        assert result.engine == "mask"

    def test_deterministic_schedule_runs_on_kernel_engine(self):
        config = make_config(
            8, extra={"deterministic_schedule": DeterministicSchedule(field_order=2, seed=1)}
        )
        placement = standard_instance(8, 8, 8, seed=1)
        result = run_dissemination(
            IndexedBroadcastNode,
            config,
            placement,
            RandomConnectedAdversary(seed=1),
            seed=1,
            engine="kernel",
        )
        assert result.engine == "kernel"
        assert result.completed and result.correct

    def test_non_gf2_fields_fall_back(self):
        assert kernel_for(IndexedBroadcastNode, make_config(8, field_order=3)) is None
        assert kernel_for(NaiveCodedNode, make_config(8, field_order=3)) is None
        assert kernel_for(GreedyForwardKernel.node_class, make_config(8, field_order=5)) is None

    def test_non_canonical_indexing_falls_back_to_mask(self):
        # index_of mappings that are not a bijection onto 0..k-1 decline the
        # kernel at construction; auto lands on the mask engine, an explicit
        # request fails loudly.
        placement = standard_instance(8, 8, 8, seed=1)
        ids = sorted(placement.all_ids())
        index_of = {tid: 0 for tid in ids}  # everything collides on index 0
        config = make_config(8, extra={"index_of": index_of})
        assert kernel_for(IndexedBroadcastNode, config) is IndexedBroadcastKernel
        result = run_dissemination(
            IndexedBroadcastNode,
            config,
            placement,
            RandomConnectedAdversary(seed=1),
            seed=1,
            engine="auto",
            max_rounds=30,
        )
        assert result.engine == "mask"
        with pytest.raises(ValueError, match="canonical"):
            run_dissemination(
                IndexedBroadcastNode,
                config,
                placement,
                RandomConnectedAdversary(seed=1),
                seed=1,
                engine="kernel",
                max_rounds=30,
            )

    def test_registered_kernels_resolve(self):
        assert kernel_for(IndexedBroadcastNode, make_config(8)) is IndexedBroadcastKernel
        assert kernel_for(NaiveCodedNode, make_config(8)) is NaiveCodedKernel
        assert kernel_for(GreedyForwardNode, make_config(8)) is GreedyForwardKernel
