"""Unit tests for the mask-native :mod:`repro.network.topology` layer."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.network import graphs
from repro.network.topology import (
    Topology,
    as_topology,
    clique_pair_topology,
    complete_topology,
    path_topology,
    random_connected_topology,
    random_tree_topology,
    ring_topology,
    shifted_ring_topology,
    split_topology,
    star_topology,
)


def _edge_set(graph) -> set[frozenset]:
    return {frozenset(edge) for edge in graph.edges}


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_from_nx_to_nx_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        graph = graphs.random_connected_graph(17, rng, extra_edge_prob=0.2)
        topology = Topology.from_nx(graph)
        back = topology.to_nx()
        assert set(back.nodes) == set(graph.nodes)
        assert _edge_set(back) == _edge_set(graph)

    def test_to_nx_from_nx_round_trip(self):
        topology = split_topology(11, informed=range(5), bridge_pairs=2)
        again = Topology.from_nx(topology.to_nx())
        assert again == topology
        assert hash(again) == hash(topology)

    def test_from_nx_numpy_labels_above_64_nodes(self):
        # Regression: numpy-int node labels must not wrap the row shifts at
        # 64 bits (mask rows are arbitrary-precision Python ints).
        n = 80
        graph = nx.Graph()
        graph.add_nodes_from(np.arange(n))
        for u in np.arange(n - 1):
            graph.add_edge(u, u + np.int64(1))
        topology = Topology.from_nx(graph)
        assert all(isinstance(mask, int) for mask in topology.masks)
        assert topology.is_connected()
        assert _edge_set(topology.to_nx()) == _edge_set(graph)

    def test_from_nx_rejects_wrong_node_labels(self):
        graph = nx.path_graph(4)
        graph = nx.relabel_nodes(graph, {3: 7})
        with pytest.raises(ValueError, match="node set"):
            Topology.from_nx(graph)

    def test_read_surface_matches_nx(self):
        topology = clique_pair_topology(9, range(4), range(4, 9), [(0, 4)])
        graph = topology.to_nx()
        assert topology.number_of_nodes() == graph.number_of_nodes()
        assert topology.number_of_edges() == graph.number_of_edges()
        for u in topology.nodes:
            assert sorted(topology.neighbors(u)) == sorted(graph.neighbors(u))
            assert topology.degree_of(u) == graph.degree(u)
        assert topology.has_edge(0, 4) and not topology.has_edge(0, 5)


class TestConnectivity:
    @pytest.mark.parametrize("seed", range(20))
    def test_mask_bfs_matches_nx_is_connected(self, seed):
        # Random graphs with no connectivity guarantee: p below/around the
        # threshold produces a healthy mix of connected and disconnected.
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 40))
        p = float(rng.uniform(0.02, 0.25))
        graph = nx.gnp_random_graph(n, p, seed=int(rng.integers(0, 2**31)))
        topology = Topology.from_nx(graph)
        assert topology.is_connected() == nx.is_connected(graph)

    def test_trivial_sizes(self):
        assert Topology(0, []).is_connected()
        assert Topology(1, [0]).is_connected()
        assert not Topology(2, [0, 0]).is_connected()

    def test_validate_accepts_legal_topology(self):
        ring_topology(8).validate(8)

    def test_validate_rejects_wrong_n(self):
        with pytest.raises(ValueError, match="node set"):
            ring_topology(8).validate(9)

    def test_validate_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Topology(3, [0b010 | 0b001, 0b101, 0b010]).validate()

    def test_validate_rejects_asymmetry(self):
        with pytest.raises(ValueError, match="asymmetric"):
            Topology(3, [0b010, 0b101, 0b000]).validate()

    def test_validate_rejects_out_of_range_bits(self):
        with pytest.raises(ValueError, match="outside"):
            Topology(2, [0b110, 0b001]).validate()

    def test_validate_rejects_disconnected(self):
        with pytest.raises(ValueError, match="connected"):
            Topology(4, [0b0010, 0b0001, 0b1000, 0b0100]).validate()


class TestAdapter:
    def test_topology_passes_through_by_identity(self):
        topology = complete_topology(5)
        assert as_topology(topology) is topology
        assert as_topology(topology, 5) is topology

    def test_nx_graph_converted(self):
        graph = graphs.ring_graph(6)
        topology = as_topology(graph, 6)
        assert isinstance(topology, Topology)
        assert _edge_set(topology) == _edge_set(graph)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="expected Topology"):
            as_topology([(0, 1)])

    def test_wrong_n_rejected(self):
        with pytest.raises(ValueError, match="node set"):
            as_topology(complete_topology(5), 6)


class TestBuilderTwins:
    """The mask builders are edge-identical to the networkx generators,
    including RNG draw sequences — what lets adversaries switch representation
    without changing which topology they play."""

    def test_path_twin(self):
        order = [3, 0, 2, 4, 1]
        assert _edge_set(path_topology(5, order)) == _edge_set(graphs.path_graph(5, order))

    @pytest.mark.parametrize("n", [1, 2, 3, 8])
    def test_ring_twin(self, n):
        assert _edge_set(ring_topology(n)) == _edge_set(graphs.ring_graph(n))

    @pytest.mark.parametrize("center", [0, 3, 6])
    def test_star_twin(self, center):
        assert _edge_set(star_topology(7, center)) == _edge_set(graphs.star_graph(7, center))

    def test_complete_twin(self):
        assert _edge_set(complete_topology(6)) == _edge_set(graphs.complete_graph(6))

    def test_split_twin(self):
        for bridge_pairs in (1, 3):
            mask = split_topology(10, range(4), bridge_pairs=bridge_pairs)
            legacy = graphs.split_graph(10, range(4), bridge_pairs=bridge_pairs)
            assert _edge_set(mask) == _edge_set(legacy)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_tree_twin_same_rng_sequence(self, seed):
        mask = random_tree_topology(12, np.random.default_rng(seed))
        legacy = graphs.random_tree(12, np.random.default_rng(seed))
        assert _edge_set(mask) == _edge_set(legacy)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_connected_twin_same_rng_sequence(self, seed):
        mask = random_connected_topology(14, np.random.default_rng(seed), extra_edge_prob=0.15)
        legacy = graphs.random_connected_graph(
            14, np.random.default_rng(seed), extra_edge_prob=0.15
        )
        assert _edge_set(mask) == _edge_set(legacy)

    @pytest.mark.parametrize("round_index", [0, 1, 5, 17])
    def test_shifted_ring_twin(self, round_index):
        mask = shifted_ring_topology(9, round_index)
        legacy = graphs.shifted_ring(9, round_index)
        assert _edge_set(mask) == _edge_set(legacy)


class TestStructuralIdentity:
    def test_equal_masks_equal_objects(self):
        assert ring_topology(7) == ring_topology(7)
        assert hash(ring_topology(7)) == hash(ring_topology(7))

    def test_different_edges_differ(self):
        assert ring_topology(7) != path_topology(7)

    def test_usable_as_dict_key(self):
        cache = {ring_topology(7): "ring", path_topology(7): "path"}
        assert cache[ring_topology(7)] == "ring"


class TestPackedSetAlgebra:
    @pytest.mark.parametrize("n", [7, 70])
    def test_union_matches_nx(self, n):
        a = random_connected_topology(n, np.random.default_rng(0))
        b = random_connected_topology(n, np.random.default_rng(1))
        expected = _edge_set(a) | _edge_set(b)
        union = a.union(b)
        assert union.n == n
        assert _edge_set(union) == expected

    @pytest.mark.parametrize("n", [7, 70])
    def test_intersection_matches_nx(self, n):
        a = random_connected_topology(n, np.random.default_rng(0), extra_edge_prob=0.3)
        b = random_connected_topology(n, np.random.default_rng(1), extra_edge_prob=0.3)
        expected = _edge_set(a) & _edge_set(b)
        intersection = a.intersection(b)
        assert intersection.n == n
        assert _edge_set(intersection) == expected

    def test_union_of_validated_operands_is_pre_validated(self):
        union = ring_topology(9).union(star_topology(9))
        union.validate(9)  # must not raise, and must be free (flag test)
        assert _edge_set(union) == _edge_set(ring_topology(9)) | _edge_set(star_topology(9))

    def test_intersection_can_be_probed_when_disconnected(self):
        a = path_topology(4, order=[0, 1, 2, 3])
        b = path_topology(4, order=[1, 3, 0, 2])
        common = a.intersection(b)
        assert not common.is_connected()
        with pytest.raises(ValueError):
            common.validate(4)

    def test_mismatched_node_counts_rejected(self):
        with pytest.raises(ValueError):
            ring_topology(5).union(ring_topology(6))
        with pytest.raises(ValueError):
            ring_topology(5).intersection(ring_topology(6))

    @pytest.mark.parametrize("n", [1, 7, 70])
    def test_degrees_matches_nx(self, n):
        topology = random_connected_topology(n, np.random.default_rng(3), extra_edge_prob=0.2)
        degrees = topology.degrees()
        assert degrees.shape == (n,)
        assert degrees.dtype == np.int64
        expected = dict(topology.to_nx().degree())
        assert [expected[u] for u in range(n)] == degrees.tolist()
        assert [topology.degree_of(u) for u in range(n)] == degrees.tolist()
