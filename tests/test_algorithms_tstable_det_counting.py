"""Tests for the T-stable patch protocol, deterministic coding and counting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    DeterministicIndexedBroadcastNode,
    IndexedBroadcastNode,
    PatchShareCoordinator,
    TokenForwardingNode,
    count_nodes_via_doubling,
    deterministic_broadcast_config,
    make_tstable_factory,
)
from repro.algorithms.base import ProtocolConfig
from repro.coding import DeterministicSchedule, omniscient_field_order
from repro.network import (
    BottleneckAdversary,
    OmniscientBottleneckAdversary,
    PathShuffleAdversary,
    RandomConnectedAdversary,
    TStableAdversary,
)
from repro.simulation import run_dissemination
from repro.tokens import MessageBudget, make_tokens, one_token_per_node, place_tokens
from tests.conftest import make_config


class TestTStablePatchProtocol:
    def _run(self, n, stability, seed=0, adversary_seed=1, d=8):
        rng = np.random.default_rng(seed)
        config = make_config(n, d=d, b=n + 32, stability=stability)
        placement = one_token_per_node(n, d, rng)
        factory = make_tstable_factory(config, seed=seed)
        adversary = TStableAdversary(RandomConnectedAdversary(seed=adversary_seed), stability)
        return run_dissemination(factory, config, placement, adversary)

    @pytest.mark.parametrize("stability", [4, 8])
    def test_completes_and_correct(self, stability):
        result = self._run(n=12, stability=stability)
        assert result.completed and result.correct

    def test_completes_under_path_shuffle(self):
        rng = np.random.default_rng(3)
        n, stability = 12, 6
        config = make_config(n, d=8, b=n + 32, stability=stability)
        placement = one_token_per_node(n, 8, rng)
        factory = make_tstable_factory(config, seed=3)
        adversary = TStableAdversary(PathShuffleAdversary(seed=4), stability)
        result = run_dissemination(factory, config, placement, adversary)
        assert result.completed and result.correct

    def test_coordinator_shared_across_nodes(self):
        config = make_config(8, stability=4)
        factory = make_tstable_factory(config, seed=0)
        rng = np.random.default_rng(0)
        a = factory(0, config, rng)
        b = factory(1, config, rng)
        assert a.shared_coordinator is b.shared_coordinator
        assert isinstance(a.shared_coordinator, PatchShareCoordinator)

    def test_coordinator_phases_partition_the_block(self):
        config = make_config(16, stability=8)
        coordinator = PatchShareCoordinator(config, seed=0)
        phases = [coordinator.phase_in_block(r) for r in range(8)]
        assert phases[0] == "setup"
        assert phases[-1] == "pass"
        assert coordinator.setup_rounds + coordinator.pass_rounds >= config.stability

    def test_radius_scales_with_stability(self):
        small = PatchShareCoordinator(make_config(32, stability=4), seed=0)
        large = PatchShareCoordinator(make_config(32, stability=40), seed=0)
        assert large.radius >= small.radius


class TestDeterministicCoding:
    def test_config_builder_uses_large_field(self):
        config = deterministic_broadcast_config(6, 3, 8)
        assert config.field_order >= omniscient_field_order(6, 3) - 1
        assert "deterministic_schedule" in config.extra

    def test_requires_schedule(self):
        config = make_config(6, k=3)
        with pytest.raises(ValueError):
            DeterministicIndexedBroadcastNode(0, config, np.random.default_rng(0))

    def _placement_and_index(self, n, k, d, seed=0):
        rng = np.random.default_rng(seed)
        tokens = make_tokens(k, d, rng)
        placement = place_tokens(tokens, n, rng)
        index_of = {t.token_id: i for i, t in enumerate(tokens)}
        return placement, index_of

    def test_deterministic_broadcast_completes_against_adaptive_adversary(self):
        n, k, d = 6, 3, 8
        placement, index_of = self._placement_and_index(n, k, d)
        base = deterministic_broadcast_config(n, k, d)
        config = ProtocolConfig(
            n=n, k=k, token_bits=d, budget=base.budget, field_order=base.field_order,
            extra={**dict(base.extra), "index_of": index_of},
        )
        result = run_dissemination(
            DeterministicIndexedBroadcastNode, config, placement, BottleneckAdversary()
        )
        assert result.completed and result.correct

    def test_deterministic_broadcast_against_omniscient_adversary(self):
        # Theorem 6.1: with the large field even an adversary that sees the
        # committed messages cannot stall the spread.
        n, k, d = 6, 2, 8
        placement, index_of = self._placement_and_index(n, k, d, seed=1)
        base = deterministic_broadcast_config(n, k, d)
        config = ProtocolConfig(
            n=n, k=k, token_bits=d, budget=base.budget, field_order=base.field_order,
            extra={**dict(base.extra), "index_of": index_of},
        )
        result = run_dissemination(
            DeterministicIndexedBroadcastNode, config, placement,
            OmniscientBottleneckAdversary(), max_rounds=20 * n,
        )
        assert result.completed and result.correct

    def test_runs_are_identical_across_seeds(self):
        # The protocol uses no runtime randomness: two runs with different
        # runner seeds produce identical round counts.
        n, k, d = 6, 2, 8
        placement, index_of = self._placement_and_index(n, k, d, seed=2)
        base = deterministic_broadcast_config(n, k, d)
        config = ProtocolConfig(
            n=n, k=k, token_bits=d, budget=base.budget, field_order=base.field_order,
            extra={**dict(base.extra), "index_of": index_of},
        )
        r1 = run_dissemination(
            DeterministicIndexedBroadcastNode, config, placement, BottleneckAdversary(), seed=1
        )
        r2 = run_dissemination(
            DeterministicIndexedBroadcastNode, config, placement, BottleneckAdversary(), seed=99
        )
        assert r1.rounds == r2.rounds

    def test_schedule_header_cost_reflected_in_budget(self):
        config = deterministic_broadcast_config(8, 4, 8)
        # Corollary 6.2: message size k^2 log n + d, much larger than the
        # randomized k + d.
        assert config.budget.b > 4 * 8


class TestCounting:
    def test_counting_with_token_forwarding(self):
        outcome = count_nodes_via_doubling(
            TokenForwardingNode, n_true=10, token_bits=8, b=64,
            adversary_factory=lambda: RandomConnectedAdversary(seed=3),
        )
        assert outcome.exact_count == 10
        assert outcome.estimate >= 10
        assert outcome.estimate < 2 * 16  # first power of two >= 10, doubled at most once more
        assert outcome.attempts >= 3  # guesses 2, 4, 8 must fail

    def test_counting_with_coded_broadcast(self):
        outcome = count_nodes_via_doubling(
            IndexedBroadcastNode, n_true=9, token_bits=8, b=64,
            adversary_factory=lambda: RandomConnectedAdversary(seed=5),
        )
        assert outcome.exact_count == 9
        assert outcome.estimate >= 9

    def test_total_overhead_is_bounded(self):
        outcome = count_nodes_via_doubling(
            TokenForwardingNode, n_true=12, token_bits=8, b=64,
            adversary_factory=lambda: RandomConnectedAdversary(seed=7),
        )
        # The geometric-sum argument: all failed attempts together cost at
        # most a small multiple of the successful run.
        assert outcome.total_rounds <= 4 * outcome.final_rounds + 200
