"""Equivalence and contract tests for the vectorised kernel engine.

The kernel engine (packed knowledge matrices, CSR delivery, whole-network
compose/deliver array ops — see :mod:`repro.simulation.kernels`) implements
the identical round semantics as the mask engine; these tests pin metric
and knowledge equivalence across protocol/adversary pairs, the ``auto``
selection rules (kernel > mask > legacy), the packed-adjacency / CSR
representations on :class:`~repro.network.topology.Topology`, and the
``to_nodes`` materialisation that keeps ``RunResult.nodes`` usable.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    GreedyForwardNode,
    IndexedBroadcastNode,
    NaiveCodedNode,
    PipelinedTokenForwardingNode,
    PriorityForwardNode,
    RandomForwardNode,
    TokenForwardingNode,
)
from repro.coding.rlnc import GenerationState
from repro.network import (
    BottleneckAdversary,
    OmniscientBottleneckAdversary,
    PathShuffleAdversary,
    RandomConnectedAdversary,
    ShiftedRingAdversary,
    StaticAdversary,
    TStableAdversary,
    Topology,
    ring_topology,
)
from repro.simulation import kernel_for, run_dissemination, standard_instance
from repro.simulation.kernels import (
    GreedyForwardKernel,
    IndexedBroadcastKernel,
    NaiveCodedKernel,
    RandomForwardKernel,
    TokenForwardingKernel,
)
from tests.conftest import make_config


def _run(factory, config, adversary, *, engine, seed=3, **kwargs):
    placement = standard_instance(config.n, config.k, config.token_bits, seed=seed)
    return run_dissemination(
        factory, config, placement, adversary, seed=seed, engine=engine, **kwargs
    )


PAIRS = [
    pytest.param(
        TokenForwardingNode, lambda: BottleneckAdversary(), 12, id="forwarding-bottleneck"
    ),
    pytest.param(
        PipelinedTokenForwardingNode,
        lambda: TStableAdversary(PathShuffleAdversary(seed=5), 4),
        12,
        id="pipelined-tstable-shuffle",
    ),
    pytest.param(
        RandomForwardNode, lambda: ShiftedRingAdversary(), 10, id="random-shifted-ring"
    ),
    pytest.param(
        IndexedBroadcastNode,
        lambda: RandomConnectedAdversary(seed=7),
        10,
        id="rlnc-random-connected",
    ),
]


class TestKernelEquivalence:
    @pytest.mark.parametrize("factory,adversary_factory,n", PAIRS)
    def test_identical_metrics_and_knowledge(self, factory, adversary_factory, n):
        config = make_config(n)
        results = {
            engine: _run(
                factory,
                config,
                adversary_factory(),
                engine=engine,
                track_progress=True,
            )
            for engine in ("kernel", "mask")
        }
        kernel, mask = results["kernel"], results["mask"]
        assert kernel.engine == "kernel" and mask.engine == "mask"
        assert kernel.completed and kernel.correct
        assert dataclasses.asdict(kernel.metrics) == dataclasses.asdict(mask.metrics)
        assert kernel.correct == mask.correct
        for kernel_node, mask_node in zip(kernel.nodes, mask.nodes):
            assert kernel_node.known_token_ids() == mask_node.known_token_ids()

    @pytest.mark.parametrize("factory,adversary_factory,n", PAIRS)
    def test_static_ring_equivalence(self, factory, adversary_factory, n):
        # Static topologies exercise the cached packed/CSR representations
        # across many rounds of one object.
        config = make_config(n)
        kernel = _run(factory, config, StaticAdversary(ring_topology(n)), engine="kernel")
        mask = _run(factory, config, StaticAdversary(ring_topology(n)), engine="mask")
        assert dataclasses.asdict(kernel.metrics) == dataclasses.asdict(mask.metrics)

    def test_recorded_topologies_match_mask_engine(self):
        config = make_config(10)
        runs = {
            engine: _run(
                TokenForwardingNode,
                config,
                TStableAdversary(PathShuffleAdversary(seed=4), 3),
                engine=engine,
                record_topologies=True,
            )
            for engine in ("kernel", "mask")
        }
        kernel, mask = runs["kernel"], runs["mask"]
        assert len(kernel.topologies) == len(mask.topologies)
        for kernel_topology, mask_topology in zip(kernel.topologies, mask.topologies):
            assert isinstance(kernel_topology, Topology)
            assert kernel_topology == mask_topology

    def test_run_past_completion_equivalence(self):
        # stop_at_completion=False exercises finished_all() on the coded
        # kernel (nodes terminate once decoded).
        config = make_config(8)
        runs = {
            engine: _run(
                IndexedBroadcastNode,
                config,
                RandomConnectedAdversary(seed=2),
                engine=engine,
                stop_at_completion=False,
                max_rounds=60,
            )
            for engine in ("kernel", "mask")
        }
        assert dataclasses.asdict(runs["kernel"].metrics) == dataclasses.asdict(
            runs["mask"].metrics
        )


class TestToNodesParity:
    def test_forwarding_node_state_materialised(self):
        config = make_config(10)
        kernel = _run(TokenForwardingNode, config, BottleneckAdversary(), engine="kernel")
        mask = _run(TokenForwardingNode, config, BottleneckAdversary(), engine="mask")
        assert kernel.correct is True and kernel.correct == mask.correct
        next_round = kernel.metrics.rounds_executed
        for kernel_node, mask_node in zip(kernel.nodes, mask.nodes):
            assert kernel_node.known_token_ids() == mask_node.known_token_ids()
            assert kernel_node.delivered == mask_node.delivered
            # The materialised node keeps working: it composes the same
            # broadcast the object-engine node would.
            assert kernel_node.compose(next_round) == mask_node.compose(next_round)

    def test_pipelined_send_counts_materialised(self):
        config = make_config(10)
        adversary = lambda: TStableAdversary(PathShuffleAdversary(seed=9), 4)  # noqa: E731
        kernel = _run(PipelinedTokenForwardingNode, config, adversary(), engine="kernel")
        mask = _run(PipelinedTokenForwardingNode, config, adversary(), engine="mask")
        next_round = kernel.metrics.rounds_executed
        for kernel_node, mask_node in zip(kernel.nodes, mask.nodes):
            assert kernel_node._send_counts == mask_node._send_counts
            assert kernel_node.compose(next_round) == mask_node.compose(next_round)

    def test_random_forward_preserves_learn_order(self):
        # RandomForwardNode.compose draws over known tokens in insertion
        # order, so to_nodes must reproduce the exact dict order for the
        # materialised nodes to stay stream-compatible.
        config = make_config(10)
        kernel = _run(RandomForwardNode, config, ShiftedRingAdversary(), engine="kernel")
        mask = _run(RandomForwardNode, config, ShiftedRingAdversary(), engine="mask")
        for kernel_node, mask_node in zip(kernel.nodes, mask.nodes):
            assert list(kernel_node.known) == list(mask_node.known)
        next_round = kernel.metrics.rounds_executed
        for kernel_node, mask_node in zip(kernel.nodes, mask.nodes):
            assert kernel_node.compose(next_round) == mask_node.compose(next_round)

    def test_correctness_check_runs_on_materialised_payloads(self):
        config = make_config(9)
        placement = standard_instance(9, 9, 8, seed=5)
        result = run_dissemination(
            TokenForwardingNode,
            config,
            placement,
            RandomConnectedAdversary(seed=5),
            seed=5,
            engine="kernel",
        )
        assert result.correct is True
        expected = placement.by_id()
        for node in result.nodes:
            decoded = node.decoded_tokens()
            assert set(decoded) == set(expected)
            for token_id, token in expected.items():
                assert decoded[token_id].payload == token.payload


class TweakedForwardingNode(TokenForwardingNode):
    """Behaviourally identical subclass — must NOT inherit the kernel."""


class TestEngineSelection:
    def test_auto_prefers_kernel_engine(self):
        config = make_config(8)
        result = _run(TokenForwardingNode, config, BottleneckAdversary(), engine="auto")
        assert result.engine == "kernel"
        assert result.completed and result.correct

    def test_subclass_falls_back_to_mask(self):
        config = make_config(8)
        result = _run(TweakedForwardingNode, config, BottleneckAdversary(), engine="auto")
        assert result.engine == "mask"
        plain = _run(TokenForwardingNode, config, BottleneckAdversary(), engine="mask")
        assert dataclasses.asdict(result.metrics) == dataclasses.asdict(plain.metrics)

    def test_kernel_engine_rejects_unregistered_protocols(self):
        config = make_config(8)
        with pytest.raises(ValueError, match="RoundKernel"):
            _run(PriorityForwardNode, config, BottleneckAdversary(), engine="kernel")

    def test_kernel_engine_rejects_omniscient_without_message_views(
        self, monkeypatch
    ):
        # Every in-repo kernel now ships wire_message; exercise the gate by
        # withdrawing the opt-in, as a third-party kernel without the hook
        # would present itself.
        monkeypatch.setattr(NaiveCodedKernel, "supports_message_views", False)
        config = make_config(8)
        with pytest.raises(ValueError, match="sees_messages"):
            _run(
                NaiveCodedNode,
                config,
                OmniscientBottleneckAdversary(),
                engine="kernel",
            )
        fallback = _run(
            NaiveCodedNode, config, OmniscientBottleneckAdversary(), engine="auto"
        )
        assert fallback.engine == "mask"

    def test_auto_with_omniscient_adversary_uses_message_views(self):
        # Kernels with wire_message stay kernel-eligible under omniscient
        # adversaries — including the coded kernels, which rebuild their
        # flood/broadcast wire messages on demand.
        assert TokenForwardingKernel.supports_message_views is True
        assert NaiveCodedKernel.supports_message_views is True
        assert GreedyForwardKernel.supports_message_views is True
        config = make_config(8)
        for factory in (TokenForwardingNode, NaiveCodedNode, GreedyForwardNode):
            result = _run(
                factory, config, OmniscientBottleneckAdversary(), engine="auto"
            )
            assert result.engine == "kernel"
            mask = _run(
                factory, config, OmniscientBottleneckAdversary(), engine="mask"
            )
            assert dataclasses.asdict(result.metrics) == dataclasses.asdict(
                mask.metrics
            )

    def test_unknown_engine_rejected(self):
        config = make_config(8)
        with pytest.raises(ValueError, match="engine"):
            _run(TokenForwardingNode, config, BottleneckAdversary(), engine="warp")

    def test_kernel_for_screens_configurations(self):
        assert kernel_for(TokenForwardingNode, make_config(8)) is TokenForwardingKernel
        assert kernel_for(RandomForwardNode, make_config(8)) is RandomForwardKernel
        assert kernel_for(TweakedForwardingNode, make_config(8)) is None
        assert kernel_for(lambda uid, config, rng: None, make_config(8)) is None
        assert (
            kernel_for(IndexedBroadcastNode, make_config(8))
            is IndexedBroadcastKernel
        )
        # The coded kernels decline non-GF(2) fields; the deterministic
        # pre-committed-coefficients variant over GF(2) *is* batchable
        # (coefficient parities instead of rng draws).
        assert kernel_for(IndexedBroadcastNode, make_config(8, field_order=3)) is None
        config = make_config(8, extra={"deterministic_schedule": object()})
        assert kernel_for(IndexedBroadcastNode, config) is IndexedBroadcastKernel
        assert kernel_for(NaiveCodedNode, make_config(8)) is NaiveCodedKernel
        assert kernel_for(NaiveCodedNode, make_config(8, field_order=3)) is None
        assert kernel_for(GreedyForwardNode, make_config(8)) is GreedyForwardKernel
        assert kernel_for(GreedyForwardNode, make_config(8, field_order=5)) is None
        assert kernel_for(PriorityForwardNode, make_config(8)) is None

    def test_node_level_precondition_falls_back_under_auto(self, monkeypatch):
        # Forcing GenerationState off the mask-native pipeline is only
        # visible on the built nodes: auto must fall back to the mask
        # engine, an explicit engine="kernel" must fail loudly.
        original_init = GenerationState.__init__

        def array_pipeline_init(self, generation):
            original_init(self, generation)
            self._mask_native = False

        monkeypatch.setattr(GenerationState, "__init__", array_pipeline_init)
        config = make_config(8)
        result = _run(IndexedBroadcastNode, config, RandomConnectedAdversary(seed=1), engine="auto")
        assert result.engine == "mask"
        with pytest.raises(ValueError, match="mask-native"):
            _run(IndexedBroadcastNode, config, RandomConnectedAdversary(seed=1), engine="kernel")


class TestPackedAdjacency:
    @given(
        n=st.integers(min_value=1, max_value=80),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_packed_and_csr_round_trip(self, n, data):
        edge_count = data.draw(st.integers(min_value=0, max_value=3 * n))
        edges = [
            (
                data.draw(st.integers(min_value=0, max_value=n - 1)),
                data.draw(st.integers(min_value=0, max_value=n - 1)),
            )
            for _ in range(edge_count)
        ]
        edges = [(u, v) for u, v in edges if u != v]
        topology = Topology.from_edges(n, edges)

        packed = topology.packed_adjacency()
        assert packed.shape == (n, max(1, (n + 63) // 64))
        assert packed.dtype == np.uint64
        # Row round-trip: packed words are the little-endian limbs of the
        # integer masks.
        for uid in range(n):
            assert (
                int.from_bytes(packed[uid].astype("<u8").tobytes(), "little")
                == topology.masks[uid]
            )

        indices, indptr = topology.csr_adjacency()
        assert indptr[0] == 0 and indptr[-1] == indices.size
        for uid in range(n):
            neighbours = list(topology.neighbors(uid))
            assert list(indices[indptr[uid] : indptr[uid + 1]]) == neighbours
            assert list(topology.neighbors_tuple(uid)) == neighbours

    def test_from_packed_masks_lazily_equal(self):
        reference = ring_topology(9)
        rebuilt = Topology.from_packed(9, np.array(reference.packed_adjacency()))
        assert rebuilt == reference
        assert hash(rebuilt) == hash(reference)
        assert rebuilt.masks == reference.masks
        assert {frozenset(e) for e in rebuilt.edges} == {
            frozenset(e) for e in reference.edges
        }

    def test_from_packed_validates_shape(self):
        with pytest.raises(ValueError, match="packed adjacency"):
            Topology.from_packed(9, np.zeros((9, 3), dtype=np.uint64))

    def test_hand_built_topologies_still_fully_validated(self):
        # pre_validated is reserved for builders; a hand-built disconnected
        # topology must still be rejected.
        disconnected = Topology(4, [0b0010, 0b0001, 0b1000, 0b0100])
        with pytest.raises(ValueError, match="connected"):
            disconnected.validate(4)
        loop = Topology(2, [0b11, 0b01])
        with pytest.raises(ValueError, match="self-loop"):
            loop.validate(2)

    def test_validate_memoises_success(self):
        topology = Topology(3, [0b010, 0b101, 0b010])
        assert not topology._valid
        topology.validate(3)
        assert topology._valid  # immutable object: validity is permanent

    def test_degenerate_bridge_not_pre_validated(self):
        # A (u, u) bridge writes a self-loop bit; the builder must not
        # certify such a topology, so validate() keeps rejecting it.
        from repro.network.topology import clique_pair_topology

        bad = clique_pair_topology(4, [0, 1], [2, 3], bridges=[(0, 2), (1, 1)])
        with pytest.raises(ValueError, match="self-loop"):
            bad.validate(4)

    def test_from_packed_does_not_freeze_or_alias_caller_array(self):
        source = np.array(ring_topology(8).packed_adjacency())
        topology = Topology.from_packed(8, source)
        source[0, 0] = 0  # caller's array stays writable...
        assert topology.packed_adjacency()[0, 0] != 0  # ...and is not aliased
