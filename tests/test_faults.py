"""Contract, invariant, and engine-parity tests for the fault axis.

The fault layer (:mod:`repro.network.faults`) edits every round's canonical
CSR adjacency into an *effective* CSR shared verbatim by the kernel / mask /
legacy engines; these tests pin

* :class:`FaultModel` validation and the benign no-op guarantee (a model
  with no active axis leaves runs bit-identical to ``faults=None``),
* hypothesis invariants on the effective CSR — delivered edges are a
  sub-multiset of sent edges, duplication multiplicity is bounded by 2,
  crashed endpoints never appear — and on the :class:`SpanGuard` — malformed
  Byzantine vectors are provably outside the source span and can never
  raise a ``GF2Basis`` / ``GF2BasisBatch`` rank past it,
* byte-identical :class:`~repro.simulation.metrics.RunMetrics` across all
  three engines for every hostile scenario-catalog entry, with the kernel
  engine actually selected (no legacy fallback),
* the ``wire_message`` kernel hook keeping message-inspecting (omniscient)
  adversaries kernel-eligible, alone and combined with faults,
* ``lifeline=False`` churn monotonicity and the derived crash schedules.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    GreedyForwardNode,
    IndexedBroadcastNode,
    NaiveCodedNode,
    TokenForwardingNode,
)
from repro.gf import GF2Basis
from repro.gf.packed import GF2BasisBatch, masks_to_packed
from repro.network import (
    BudgetedLossStrategy,
    ChurnProcess,
    EdgeMarkovProcess,
    FaultModel,
    OmniscientBottleneckAdversary,
    PartitionModel,
    SpanGuard,
    TargetedCrashStrategy,
    crash_schedule_from_churn,
    random_connected_topology,
)
from repro.scenarios import fault_model_for, hostile_scenarios, make_scenario
from repro.simulation import (
    RunMetrics,
    build_nodes,
    run_dissemination,
    standard_instance,
)
from repro.simulation.coded_kernels import GreedyForwardKernel
from repro.simulation.kernels import _neighbor_or
from tests.conftest import make_config

ENGINES = ("kernel", "mask", "legacy")


def _run_all_engines(factory, config, scenario_name, fault_model, *, seed=3, **kwargs):
    placement = standard_instance(config.n, config.k, config.token_bits, seed=seed)
    return {
        engine: run_dissemination(
            factory,
            config,
            placement,
            make_scenario(scenario_name, config.n, seed=5),
            seed=seed,
            engine=engine,
            faults=fault_model,
            track_progress=True,
            **kwargs,
        )
        for engine in ENGINES
    }


def _assert_identical(results, expect_kernel=True):
    kernel = results["kernel"]
    if expect_kernel:
        assert kernel.engine == "kernel"
    reference = dataclasses.asdict(kernel.metrics)
    for engine in ("mask", "legacy"):
        assert dataclasses.asdict(results[engine].metrics) == reference, engine
    for kernel_node, mask_node in zip(kernel.nodes, results["mask"].nodes):
        assert kernel_node.known_token_ids() == mask_node.known_token_ids()
    return kernel


class TestFaultModelValidation:
    def test_defaults_are_inactive(self):
        model = FaultModel()
        assert not model.active
        assert model.crashes == () and model.byzantine == ()

    @pytest.mark.parametrize("kwargs", [
        {"loss": -0.1},
        {"loss": 1.0001},
        {"duplication": -0.5},
        {"duplication": 2.0},
        {"byzantine_mode": "teleport"},
        {"crashes": ((3, 0), (3, 7))},
        {"crashes": ((-1, 0),)},
        {"crashes": ((2, -4),)},
        {"byzantine": (5, 5)},
        {"byzantine": (-2,)},
        {"crashes": ((4, 1),), "byzantine": (4,)},
    ])
    def test_invalid_models_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultModel(**kwargs)

    def test_schedules_are_normalised_sorted(self):
        model = FaultModel(crashes=((7, 2), (1, 5)), byzantine=(9, 3))
        assert model.crashes == ((1, 5), (7, 2))
        assert model.byzantine == (3, 9)

    def test_each_axis_activates(self):
        assert FaultModel(loss=0.1).active
        assert FaultModel(duplication=0.1).active
        assert FaultModel(crashes=((0, 3),)).active
        assert FaultModel(byzantine=(2,)).active

    def test_bind_rejects_out_of_range_uids(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="out of range"):
            FaultModel(crashes=((8, 0),)).bind(8, rng)
        with pytest.raises(ValueError, match="out of range"):
            FaultModel(byzantine=(11,)).bind(8, rng)

    def test_inactive_model_is_bit_identical_to_no_faults(self):
        config = make_config(n=10, k=8)
        placement = standard_instance(10, 8, config.token_bits, seed=3)
        runs = {}
        for faults in (None, FaultModel()):
            runs[faults is None] = run_dissemination(
                TokenForwardingNode, config, placement,
                make_scenario("edge_markov", 10, seed=5),
                seed=3, faults=faults, track_progress=True,
            )
        assert dataclasses.asdict(runs[True].metrics) == dataclasses.asdict(
            runs[False].metrics
        )
        assert runs[False].metrics.survivors is None
        assert runs[False].metrics.surviving_completion_rate is None
        assert "survivors" not in runs[False].metrics.summary()


class TestEffectiveCsrInvariants:
    @settings(deadline=None, max_examples=50)
    @given(
        n=st.integers(3, 20),
        loss=st.floats(0.0, 1.0),
        duplication=st.floats(0.0, 1.0),
        crashed=st.sets(st.integers(0, 19), max_size=5),
        seed=st.integers(0, 10_000),
    )
    def test_delivered_is_a_submultiset_of_sent(
        self, n, loss, duplication, crashed, seed
    ):
        crashes = tuple((uid, 0) for uid in sorted(crashed) if uid < n)
        model = FaultModel(loss=loss, duplication=duplication, crashes=crashes)
        bound = model.bind(n, np.random.default_rng(seed))
        plan = bound.begin_round(0)
        topology = random_connected_topology(n, np.random.default_rng(seed + 1))
        indices, indptr = topology.csr_adjacency()
        eff_indices, eff_indptr = plan.bind_edges(indices, indptr)
        assert eff_indptr[0] == 0 and eff_indptr[-1] == eff_indices.size
        for v in range(n):
            base = Counter(indices[indptr[v] : indptr[v + 1]].tolist())
            eff = eff_indices[eff_indptr[v] : eff_indptr[v + 1]].tolist()
            # Delivered senders are a sub-multiset of sent senders: every
            # effective edge existed, at most doubled by duplication.
            for sender, copies in Counter(eff).items():
                assert sender in base
                assert copies <= 2 * base[sender]
            # Segments keep the canonical ascending-sender order with
            # duplicates adjacent (what the delivery loops rely on).
            assert eff == sorted(eff)
            # Crashed endpoints never appear on either side.
            if plan.down[v]:
                assert eff == []
            assert not any(plan.down[s] for s in eff)
        stats = plan.account(~plan.down)
        assert stats.dropped >= 0 and stats.duplicated >= 0
        assert stats.corrupted == 0 and stats.discarded == 0
        assert stats.dropped + stats.duplicated <= indices.size

    def test_total_loss_delivers_nothing(self):
        n = 10
        config = make_config(n=n, k=n)
        placement = standard_instance(n, n, config.token_bits, seed=3)
        result = run_dissemination(
            TokenForwardingNode, config, placement,
            make_scenario("edge_markov", n, seed=5),
            seed=3, faults=FaultModel(loss=1.0), max_rounds=12,
            track_progress=True,
        )
        assert result.metrics.deliveries == 0
        assert result.metrics.dropped_deliveries > 0
        assert not result.completed
        assert result.metrics.survivors == n
        assert result.metrics.completed_survivors == 0

    def test_account_requires_bind_edges(self):
        bound = FaultModel(loss=0.5).bind(4, np.random.default_rng(0))
        plan = bound.begin_round(0)
        with pytest.raises(RuntimeError, match="bind_edges"):
            plan.account(np.ones(4, dtype=bool))


class TestSpanGuard:
    @settings(deadline=None, max_examples=50)
    @given(
        masks=st.lists(st.integers(1, 2**12 - 1), min_size=1, max_size=10),
        seed=st.integers(0, 10_000),
    )
    def test_malformed_vectors_never_raise_rank_past_span(self, masks, seed):
        length = 16
        guard = SpanGuard(length, masks)
        assert 0 < guard.rank < length
        assert guard.contains(guard.replay_mask)
        rng = np.random.default_rng(seed)
        forged = guard.sample_outside(rng)
        assert not guard.contains(forged)
        # The receiver-side contract: verified traffic (replay) cannot push
        # a basis past the source span, and forged traffic never reaches the
        # basis at all because the guard rejects it first.
        basis = GF2Basis(length)
        for mask in masks:
            basis.insert(mask)
        batch = GF2BasisBatch(1, length)
        batch.insert_batch(
            np.zeros(len(masks), dtype=np.int64),
            masks_to_packed(masks, batch.words),
        )
        assert basis.rank == guard.rank == int(batch.ranks[0])
        for incoming in (guard.replay_mask, forged):
            if guard.contains(incoming):
                basis.insert(incoming)
                batch.insert_batch(
                    np.zeros(1, dtype=np.int64),
                    masks_to_packed([incoming], batch.words),
                )
        assert basis.rank == guard.rank
        assert int(batch.ranks[0]) == guard.rank

    def test_full_span_has_no_malformed_vector(self):
        guard = SpanGuard(2, [0b01, 0b10])
        with pytest.raises(ValueError, match="whole space"):
            guard.sample_outside(np.random.default_rng(0))

    def test_full_rank_span_degrades_malformed_to_discard_all(self):
        # A full-rank source span admits no out-of-span vector, so a
        # malformed model must not keep a guard sample_outside would choke
        # on mid-run: attach degrades to the unverifiable (discard-all) path.
        bound = FaultModel(byzantine=(1,), byzantine_mode="malformed").bind(
            4, np.random.default_rng(0)
        )
        bound.attach_guard(SpanGuard(2, [0b01, 0b10]))
        assert bound.guard is None
        plan = bound.begin_round(0)
        assert plan.wire_vectors == {} and plan.substitute == {}
        indices = np.array([1, 0, 2, 1, 3, 2], dtype=np.int64)
        indptr = np.array([0, 1, 3, 5, 6], dtype=np.int64)
        eff_indices, _ = plan.bind_edges(indices, indptr)
        # Every copy the Byzantine node sends is discarded at the receivers.
        assert 1 not in eff_indices.tolist()

    def test_full_rank_span_keeps_replay_guard(self):
        bound = FaultModel(byzantine=(1,), byzantine_mode="replay").bind(
            4, np.random.default_rng(0)
        )
        guard = SpanGuard(2, [0b01, 0b10])
        bound.attach_guard(guard)
        assert bound.guard is guard
        plan = bound.begin_round(0)
        assert plan.wire_vectors == {1: guard.replay_mask}

    def test_guard_requires_a_nonzero_source(self):
        with pytest.raises(ValueError, match="non-zero"):
            SpanGuard(8, [0, 0])


class TestHostileCatalogParity:
    @pytest.mark.parametrize("name", hostile_scenarios())
    def test_forwarding_parity_across_engines(self, name):
        n, k = 16, 12
        config = make_config(n=n, k=k)
        results = _run_all_engines(
            TokenForwardingNode, config, name, fault_model_for(name, n, seed=5),
            max_rounds=6 * n,
        )
        kernel = _assert_identical(results)
        metrics = kernel.metrics
        assert metrics.survivors is not None
        # Survivors = honest nodes never *permanently* crashed; a
        # (uid, down, up) recovery interval leaves the node in the surviving
        # population, fake quorum members never enter it.
        model = fault_model_for(name, n, seed=5)
        permanent = {entry[0] for entry in model.crashes if len(entry) == 2}
        fake = set(model.quorum.fake) if model.quorum is not None else set()
        assert metrics.survivors == n - len(permanent | fake)
        assert metrics.surviving_completion_rate is not None
        assert "survivors" in metrics.summary()

    @pytest.mark.parametrize(
        "name", [s for s in hostile_scenarios() if fault_model_for(s, 16).byzantine]
    )
    def test_coded_parity_under_byzantine_senders(self, name):
        n, k = 16, 12
        config = make_config(n=n, k=k)
        results = _run_all_engines(
            IndexedBroadcastNode, config, name, fault_model_for(name, n, seed=5),
            max_rounds=6 * n,
        )
        kernel = _assert_identical(results)
        assert kernel.metrics.corrupted_deliveries > 0

    def test_catalog_entries_expose_fault_models(self):
        names = hostile_scenarios()
        assert len(names) >= 10
        for name in names:
            model = fault_model_for(name, 16, seed=5)
            assert isinstance(model, FaultModel) and model.active
        assert fault_model_for("edge_markov", 16) is None
        with pytest.raises(ValueError, match="unknown scenario"):
            fault_model_for("no_such_scenario", 16)

    def test_second_generation_entries_cover_the_new_axes(self):
        assert fault_model_for("bridge_loss_markov", 16).strategy is not None
        recover = fault_model_for("crash_recover_churn", 16, seed=5)
        assert any(len(entry) == 3 for entry in recover.crashes)
        partition = fault_model_for("partition_heal_waypoint", 16)
        assert partition.partitions is not None
        assert partition.partitions.windows
        mix = fault_model_for("budgeted_adversary_mix", 16, seed=5)
        assert mix.strategy is not None and mix.loss > 0
        assert any(len(entry) == 3 for entry in mix.crashes)


class TestCodingFamilyHostileParity:
    """The whole coding family runs every hostile entry on the kernel engine
    — no ``KernelUnsupported`` fallback — byte-identical to the object
    engines, including the crash–recovery and partition scenarios whose
    stale-state rejoins force concurrent broadcast generations."""

    @pytest.mark.parametrize("name", hostile_scenarios())
    @pytest.mark.parametrize("factory", [NaiveCodedNode, GreedyForwardNode])
    def test_coded_parity_across_engines(self, name, factory):
        n, k = 16, 12
        config = make_config(n=n, k=k)
        results = _run_all_engines(
            factory, config, name, fault_model_for(name, n, seed=5),
            max_rounds=6 * n,
        )
        kernel = _assert_identical(results)
        assert kernel.metrics.survivors is not None

    def test_recovery_metrics_populated_on_recovering_run(self):
        n, k = 16, 12
        config = make_config(n=n, k=k)
        results = _run_all_engines(
            TokenForwardingNode, config, "crash_recover_churn",
            fault_model_for("crash_recover_churn", n, seed=5), max_rounds=8 * n,
        )
        kernel = _assert_identical(results)
        assert kernel.metrics.recoveries is not None
        assert kernel.metrics.recoveries > 0
        if kernel.metrics.survivor_completion_round is not None:
            assert kernel.metrics.reconvergence_rounds is not None
            assert kernel.metrics.reconvergence_rounds >= 0
        assert "recoveries" in kernel.metrics.summary()


class TestTrailingEmptySegmentRegressions:
    """A crashed (or fully edge-lost) top-uid node leaves *trailing* empty
    segments in the effective CSR.  ``reduceat``-based kernels must still
    reduce the last non-empty segment over its full extent — the old
    start-index clamp silently dropped that segment's final neighbour,
    corrupting faulted kernel results and breaking three-engine parity.
    """

    def test_neighbor_or_keeps_last_neighbor_before_trailing_empty(self):
        send = np.array([[1], [2], [4]], dtype=np.uint64)
        indices = np.array([0, 1, 0, 1, 2], dtype=np.int64)
        indptr = np.array([0, 2, 5, 5], dtype=np.int64)
        # Node 1 has degree 3; its last neighbour (send row 4) must survive
        # the trailing empty segment of node 2.
        assert _neighbor_or(send, indices, indptr).tolist() == [[3], [7], [0]]

    def test_neighbor_or_interior_empty_segment_is_zero(self):
        send = np.array([[1], [2], [4]], dtype=np.uint64)
        indices = np.array([0, 2, 1, 2], dtype=np.int64)
        indptr = np.array([0, 2, 2, 4], dtype=np.int64)
        assert _neighbor_or(send, indices, indptr).tolist() == [[5], [0], [6]]

    def test_neighbor_or_all_segments_empty(self):
        send = np.array([[7], [9]], dtype=np.uint64)
        indices = np.array([], dtype=np.int64)
        indptr = np.array([0, 0, 0], dtype=np.int64)
        assert _neighbor_or(send, indices, indptr).tolist() == [[0], [0]]

    def test_greedy_elect_keeps_last_key_before_trailing_empty(self):
        # Elect-flood twin of the _neighbor_or regression: node 2 is the
        # last non-empty segment and its final neighbour (node 1) holds the
        # strictly largest (count, uid) key; the crashed top node leaves a
        # trailing empty segment.  The clamped reduceat dropped node 1's
        # key, electing the wrong leader.
        n = 4
        config = make_config(n)
        placement = standard_instance(n, n, 8, seed=1)
        token_index = {tid: i for i, tid in enumerate(sorted(placement.all_ids()))}
        nodes = build_nodes(
            GreedyForwardNode, config, placement, np.random.default_rng(0)
        )
        for node in nodes:
            node.enable_mask_tracking(token_index)
        kernel = GreedyForwardKernel(config, placement, token_index, nodes)
        kernel.lead_count = np.array([0, 7, 0, 0], dtype=np.int64)
        kernel.lead_uid = np.arange(n, dtype=np.int64)
        round_index = kernel.gather_rounds  # first elect round
        kernel.compose_all(round_index)
        indices = np.array([1, 0, 0, 1], dtype=np.int64)
        indptr = np.array([0, 1, 2, 4, 4], dtype=np.int64)
        kernel.deliver_all(round_index, indices, indptr, None, None)
        assert kernel.lead_count[2] == 7
        assert kernel.lead_uid[2] == 1

    @pytest.mark.parametrize("factory", [TokenForwardingNode, GreedyForwardNode])
    def test_parity_with_top_uid_crashed(self, factory):
        # The top uid is dead from round 0, so every round's effective CSR
        # ends in an empty segment while the penultimate node keeps degree
        # >= 2 — exercising both the _neighbor_or propagation (forwarding)
        # and the maximum.reduceat elect flood (greedy coded).
        n, k = 12, 10
        config = make_config(n=n, k=k)
        results = _run_all_engines(
            factory, config, "edge_markov",
            FaultModel(crashes=((n - 1, 0),)), max_rounds=8 * n,
        )
        kernel = _assert_identical(results)
        assert kernel.metrics.survivors == n - 1


class TestSurvivorRate:
    def test_zero_survivors_rate_is_undefined(self):
        # Every node scheduled to crash: the rate over an empty population
        # is None, not 0.0, so sweep averages can tell "no survivors" apart
        # from "no survivor completed".
        metrics = RunMetrics(survivors=0, completed_survivors=0)
        assert metrics.surviving_completion_rate is None
        assert metrics.summary()["surviving_completion_rate"] is None

    def test_partial_survivor_rate(self):
        metrics = RunMetrics(survivors=4, completed_survivors=3)
        assert metrics.surviving_completion_rate == 0.75


class TestMessageViewKernelEligibility:
    @pytest.mark.parametrize("factory", [TokenForwardingNode, IndexedBroadcastNode])
    def test_omniscient_adversary_stays_on_kernel(self, factory):
        n, k = 12, 10
        config = make_config(n=n, k=k)
        placement = standard_instance(n, k, config.token_bits, seed=3)
        results = {
            engine: run_dissemination(
                factory, config, placement,
                OmniscientBottleneckAdversary(usefulness_fn=_forwarded_something),
                seed=3, engine=engine, max_rounds=10 * n, track_progress=True,
            )
            for engine in ("kernel", "mask")
        }
        assert results["kernel"].engine == "kernel"
        assert dataclasses.asdict(results["kernel"].metrics) == dataclasses.asdict(
            results["mask"].metrics
        )

    def test_faulted_omniscient_run_stays_on_kernel(self):
        # The combination the tentpole demands: a message-inspecting
        # adversary AND Byzantine replay substitution, still kernel-run and
        # still byte-identical to the mask engine.
        n, k = 12, 10
        config = make_config(n=n, k=k)
        placement = standard_instance(n, k, config.token_bits, seed=3)
        faults = FaultModel(loss=0.1, byzantine=(n - 1,), byzantine_mode="replay")
        results = {
            engine: run_dissemination(
                IndexedBroadcastNode, config, placement,
                OmniscientBottleneckAdversary(usefulness_fn=_forwarded_something),
                seed=3, engine=engine, faults=faults, max_rounds=10 * n,
                track_progress=True,
            )
            for engine in ("kernel", "mask")
        }
        assert results["kernel"].engine == "kernel"
        assert dataclasses.asdict(results["kernel"].metrics) == dataclasses.asdict(
            results["mask"].metrics
        )
        assert results["kernel"].metrics.corrupted_deliveries > 0


def _forwarded_something(sender, receiver, message):
    if message is None:
        return False
    tokens = getattr(message, "tokens", None)
    if tokens is not None:
        return len(tokens) > 0
    return True


class TestRecoveryIntervalInvariants:
    @settings(deadline=None, max_examples=30)
    @given(seed=st.integers(0, 2_000), rounds=st.integers(1, 60))
    def test_churn_recovery_schedule_matches_activity_exactly(self, seed, rounds):
        n = 10
        churn = ChurnProcess(
            EdgeMarkovProcess(n, seed=seed), max_churn=2, min_active=3,
            seed=seed + 1, record_activity=True,
        )
        schedule = crash_schedule_from_churn(churn, rounds=rounds, recoveries=True)
        assert schedule == tuple(sorted(schedule))
        for entry in schedule:
            assert len(entry) in (2, 3)
            if len(entry) == 3:
                uid, down, up = entry
                assert 0 <= down < up <= rounds
        # Well-formed and non-overlapping per uid: FaultModel validation
        # accepts the schedule as-is.
        model = FaultModel(crashes=schedule)
        # Round-by-round oracle: the bound model's down vector is exactly
        # the replayed inactivity, so the effective-CSR edit (which keys off
        # down_at) excludes each node during precisely its down windows.
        churn.next_batch(rounds)
        bound = model.bind(n, np.random.default_rng(0))
        for r in range(rounds):
            active = np.asarray(churn.activity_history[r])
            assert (bound.down_at(r) == ~active).all(), r

    @settings(deadline=None, max_examples=40)
    @given(
        n=st.integers(3, 16),
        down=st.integers(0, 30),
        length=st.integers(1, 30),
        round_index=st.integers(0, 70),
        seed=st.integers(0, 10_000),
    )
    def test_effective_csr_excludes_node_exactly_during_down_window(
        self, n, down, length, round_index, seed
    ):
        uid = n - 1
        model = FaultModel(crashes=((uid, down, down + length),))
        bound = model.bind(n, np.random.default_rng(seed))
        plan = bound.begin_round(round_index)
        topology = random_connected_topology(n, np.random.default_rng(seed + 1))
        indices, indptr = topology.csr_adjacency()
        eff_indices, eff_indptr = plan.bind_edges(indices, indptr)
        is_down = down <= round_index < down + length
        assert bool(plan.down[uid]) is is_down
        inbox = eff_indices[eff_indptr[uid] : eff_indptr[uid + 1]].tolist()
        if is_down:
            assert uid not in eff_indices.tolist()
            assert inbox == []
        else:
            # No other fault axis is active: the node's edges pass through.
            assert inbox == indices[indptr[uid] : indptr[uid + 1]].tolist()
            assert uid in eff_indices.tolist()


class TestPartitionInvariants:
    @settings(deadline=None, max_examples=40)
    @given(
        n=st.integers(4, 16),
        groups=st.integers(2, 4),
        start=st.integers(0, 20),
        length=st.integers(1, 20),
        round_index=st.integers(0, 50),
        seed=st.integers(0, 10_000),
    )
    def test_no_cross_group_edges_while_a_window_is_open(
        self, n, groups, start, length, round_index, seed
    ):
        model = FaultModel(
            partitions=PartitionModel(
                windows=((start, start + length),), groups=groups
            )
        )
        bound = model.bind(n, np.random.default_rng(seed))
        plan = bound.begin_round(round_index)
        topology = random_connected_topology(n, np.random.default_rng(seed + 1))
        indices, indptr = topology.csr_adjacency()
        eff_indices, eff_indptr = plan.bind_edges(indices, indptr)
        open_window = start <= round_index < start + length
        for receiver in range(n):
            inbox = eff_indices[eff_indptr[receiver] : eff_indptr[receiver + 1]]
            if open_window:
                assert all(
                    sender % groups == receiver % groups
                    for sender in inbox.tolist()
                )
            else:
                # Outside the window the CSR is untouched.
                assert inbox.tolist() == (
                    indices[indptr[receiver] : indptr[receiver + 1]].tolist()
                )
        # A partition edit is not loss: nothing is counted as dropped.
        stats = plan.account(~plan.down)
        assert stats.dropped == 0

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            PartitionModel(windows=((0, 5), (4, 8)))
        with pytest.raises(ValueError, match="empty or inverted"):
            PartitionModel(windows=((3, 3),))
        with pytest.raises(ValueError, match="groups"):
            PartitionModel(windows=((0, 2),), groups=1)


class TestAdaptiveStrategyInvariants:
    @settings(deadline=None, max_examples=25)
    @given(
        n=st.integers(4, 14),
        budget=st.integers(0, 12),
        per_round=st.integers(1, 3),
        rounds=st.integers(1, 40),
        seed=st.integers(0, 10_000),
    )
    def test_budgeted_loss_never_exceeds_its_budget(
        self, n, budget, per_round, rounds, seed
    ):
        model = FaultModel(
            strategy=BudgetedLossStrategy(budget=budget, per_round=per_round)
        )
        bound = model.bind(n, np.random.default_rng(seed))
        rng = np.random.default_rng(seed + 1)
        total_links_lost = 0
        for r in range(rounds):
            plan = bound.begin_round(r)
            topology = random_connected_topology(n, rng)
            indices, indptr = topology.csr_adjacency()
            eff_indices, _ = plan.bind_edges(indices, indptr)
            # Each targeted link erases both directed copies.
            positions_lost = indices.size - eff_indices.size
            assert positions_lost % 2 == 0
            links = positions_lost // 2
            assert links <= per_round
            total_links_lost += links
        assert total_links_lost <= budget
        assert bound.strategy_state.spent == total_links_lost

    def test_targeted_crash_removes_highest_degree_and_respects_limit(self):
        n = 8
        model = FaultModel(strategy=TargetedCrashStrategy(start=1, period=2, limit=2))
        bound = model.bind(n, np.random.default_rng(0))
        star_indices, star_indptr = random_connected_topology(
            n, np.random.default_rng(3)
        ).csr_adjacency()
        degrees = np.diff(star_indptr)
        expected_first = int(np.argmax(degrees))
        for r in range(6):
            plan = bound.begin_round(r)
            plan.bind_edges(star_indices, star_indptr)
            if r == 0:
                assert not bound.strategy_crashed.any()
            if r == 1:
                assert bound.strategy_crashed[expected_first]
        assert int(bound.strategy_crashed.sum()) == 2
        # Strategy victims leave the surviving population.
        assert bound.survivor_indices.size == n - 2


class TestCrashSchedulesFromChurn:
    def test_lifeline_false_departures_are_permanent(self):
        churn = ChurnProcess(
            EdgeMarkovProcess(12, seed=3), max_churn=2, min_active=4,
            seed=9, record_activity=True, lifeline=False,
        )
        churn.next_batch(40)
        previous = np.ones(12, dtype=bool)
        for active in churn.activity_history:
            assert not (active & ~previous).any()
            previous = active
        assert int(previous.sum()) >= 4

    def test_schedule_matches_first_inactive_rounds(self):
        churn = ChurnProcess(
            EdgeMarkovProcess(12, seed=3), max_churn=2, min_active=4,
            seed=9, record_activity=True, lifeline=False,
        )
        schedule = crash_schedule_from_churn(churn, rounds=40)
        assert schedule and schedule == tuple(sorted(schedule))
        # The replay is reset-neutral: re-running the process reproduces
        # exactly the activity the schedule was derived from.
        churn.next_batch(40)
        for uid, first_dead in schedule:
            assert not churn.activity_history[first_dead][uid]
            assert all(churn.activity_history[r][uid] for r in range(first_dead))
        assert FaultModel(crashes=schedule).active

    def test_requires_recorded_activity(self):
        churn = ChurnProcess(EdgeMarkovProcess(8, seed=3), lifeline=False)
        with pytest.raises(ValueError, match="record_activity"):
            crash_schedule_from_churn(churn, rounds=10)

    def test_recoveries_final_round_departure_is_captured(self):
        # Regression: a departure on the very last replayed round has a
        # down event but no up event; a naive event pairing silently
        # dropped it.  The interval emitter must keep it as a permanent
        # ``(uid, down)`` entry.
        churn = ChurnProcess(
            EdgeMarkovProcess(12, seed=3), max_churn=2, min_active=4,
            seed=9, record_activity=True,
        )
        churn.next_batch(200)
        history = [active.copy() for active in churn.activity_history]
        churn.reset()
        rounds = None
        for r in range(1, 200):
            fresh = ~history[r] & history[r - 1]
            if fresh.any():
                rounds = r + 1
                uid = int(np.flatnonzero(fresh)[0])
                break
        assert rounds is not None, "churn replay produced no departure at all"
        schedule = crash_schedule_from_churn(churn, rounds=rounds, recoveries=True)
        assert (uid, rounds - 1) in schedule
