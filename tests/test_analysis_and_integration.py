"""Tests for the analysis module and cross-cutting integration checks.

The integration tests here are the small-scale versions of the paper's
headline comparisons; the full sweeps live in ``benchmarks/``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (
    centralized_coded_rounds,
    centralized_token_forwarding_lower_bound,
    coded_dissemination_rounds,
    coding_speedup_over_forwarding,
    compare_end_phase,
    deterministic_dissemination_rounds,
    deterministic_mis_rounds,
    greedy_forward_rounds,
    indexed_broadcast_message_bits,
    indexed_broadcast_rounds,
    linear_time_message_size_coded,
    linear_time_message_size_forwarding,
    naive_coded_rounds,
    priority_forward_rounds,
    recover_missing_token_via_xor,
    simulate_random_forwarding,
    stability_for_near_linear_time,
    token_forwarding_rounds,
    tstable_coded_rounds,
    tstable_patch_broadcast_rounds,
)
from repro.algorithms import GreedyForwardNode, IndexedBroadcastNode, TokenForwardingNode
from repro.network import BottleneckAdversary, RandomConnectedAdversary
from repro.simulation import fit_power_law, run_dissemination
from repro.tokens import one_token_per_node
from tests.conftest import make_config


class TestBoundFormulas:
    def test_token_forwarding_theorem_2_1_shape(self):
        # Linear in k, linear in 1/b, linear in 1/T.
        base = token_forwarding_rounds(100, 100, 10, 10)
        assert token_forwarding_rounds(100, 200, 10, 10) > 1.8 * base
        assert token_forwarding_rounds(100, 100, 10, 20) < base
        assert token_forwarding_rounds(100, 100, 10, 10, T=2) < base

    def test_forwarding_never_below_n(self):
        assert token_forwarding_rounds(50, 1, 1, 10**6) >= 50

    def test_greedy_forward_quadratic_in_b(self):
        # Theorem 7.3: the nkd/b^2 term falls quadratically with b (in the
        # regime where it dominates the additive nb term).
        n, k, d = 10**6, 10**6, 16
        small_b = greedy_forward_rounds(n, k, d, 32)
        large_b = greedy_forward_rounds(n, k, d, 64)
        assert small_b / large_b > 3.0

    def test_theorem_2_3_beats_theorem_2_1_for_moderate_b(self):
        n = k = 4096
        d = int(math.log2(n))
        for b in (64, 256, 1024):
            assert coded_dissemination_rounds(n, k, d, b) < token_forwarding_rounds(n, k, d, b)

    def test_naive_coded_matches_corollary_7_1(self):
        n = k = 1000
        assert naive_coded_rounds(n, k, 10, 100) == pytest.approx(
            n * k * math.log2(n) / 100 + n
        )

    def test_priority_forward_better_than_naive_for_large_b(self):
        n = k = 10**4
        d = 14
        b = 10**3
        assert priority_forward_rounds(n, k, d, b) < naive_coded_rounds(n, k, d, b)

    def test_indexed_broadcast_formulas(self):
        assert indexed_broadcast_rounds(100, 50) == 150
        assert indexed_broadcast_message_bits(100, 20, 2) == 120
        assert indexed_broadcast_message_bits(100, 20, 4) == 220

    def test_tstable_t_squared_speedup(self):
        # Theorem 2.4 vs Theorem 2.1: quadrupling T buys ~T^2 for coding but
        # only ~T for forwarding, in the regime where the kd/(bT)^2 term
        # dominates the additive terms.
        n, k, d, b = 10**3, 10**9, 10, 100
        coded_t2 = tstable_coded_rounds(n, k, d, b, 2)
        coded_t8 = tstable_coded_rounds(n, k, d, b, 8)
        forwarding_t2 = token_forwarding_rounds(n, k, d, b, 2)
        forwarding_t8 = token_forwarding_rounds(n, k, d, b, 8)
        coded_gain = coded_t2 / coded_t8
        forwarding_gain = forwarding_t2 / forwarding_t8
        assert coded_gain > 1.5 * forwarding_gain

    def test_patch_broadcast_lemma_8_1(self):
        assert tstable_patch_broadcast_rounds(1000, 10, 5) == pytest.approx(
            (1000 + 10 * 25) * math.log2(1000)
        )

    def test_deterministic_bounds_positive_and_ordered(self):
        n, k, b, T = 10**4, 10**4, 256, 16
        det = deterministic_dissemination_rounds(n, k, b, T)
        rand = tstable_coded_rounds(n, k, 14, b, T)
        assert det > 0
        assert det > rand  # derandomization costs something
        assert deterministic_mis_rounds(n) > 1

    def test_centralized_bounds(self):
        assert centralized_coded_rounds(500) == 500
        assert centralized_token_forwarding_lower_bound(500, 500) > 500

    def test_section_2_3_instantiations(self):
        n = 2**16
        # b = sqrt(n log n) gives linear time with coding, n log n without.
        assert linear_time_message_size_coded(n) < linear_time_message_size_forwarding(n) / 100
        # Stability thresholds: sqrt(n) (randomized) vs n^(2/3) (deterministic).
        assert stability_for_near_linear_time(n) < stability_for_near_linear_time(n, deterministic=True)

    def test_speedup_counting_case(self):
        # b = d = log n, k = n: coding wins by ~log n (first bullet of §2.3).
        n = 2**12
        log_n = int(math.log2(n))
        speedup = coding_speedup_over_forwarding(n, n, log_n, log_n)
        assert speedup > 2.0


class TestMotivatingExample:
    def test_xor_recovers_missing_token(self, rng):
        tokens = [int(x) for x in rng.integers(0, 2**16, size=10)]
        xor_all = 0
        for t in tokens:
            xor_all ^= t
        known = set(range(10)) - {4}
        assert recover_missing_token_via_xor(tokens, known, xor_all) == tokens[4]

    def test_simulated_forwarding_rounds_distribution(self, rng):
        rounds = [simulate_random_forwarding(10, rng) for _ in range(100)]
        assert all(1 <= r <= 10 for r in rounds)
        assert 3 <= np.mean(rounds) <= 8  # ~ (k+1)/2

    def test_compare_end_phase_matches_paper(self):
        comparison = compare_end_phase(k=20, trials=300, seed=1)
        assert comparison.deterministic_forwarding == 20
        assert comparison.coded == 1
        assert abs(comparison.measured_random_forwarding - 10.5) < 2.0
        assert comparison.coding_advantage > 5

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError):
            simulate_random_forwarding(0, rng)


class TestIntegrationComparisons:
    def test_coding_beats_forwarding_small_messages(self, rng):
        """The headline claim at executable scale: b = d case, coding wins."""
        n = 24
        d = 8
        placement = one_token_per_node(n, d, rng)
        coded = run_dissemination(
            IndexedBroadcastNode, make_config(n, d=d, b=n + 32), placement, BottleneckAdversary()
        )
        forwarding = run_dissemination(
            TokenForwardingNode, make_config(n, d=d, b=n + 32), placement, BottleneckAdversary()
        )
        assert coded.completed and forwarding.completed
        assert coded.rounds < forwarding.rounds

    def test_forwarding_rounds_scale_superlinearly_in_n(self, rng):
        """Token forwarding rounds grow ~n^2 for k = n (Theorem 2.1)."""
        sizes = [8, 16, 32]
        rounds = []
        for n in sizes:
            placement = one_token_per_node(n, 8, np.random.default_rng(n))
            result = run_dissemination(
                TokenForwardingNode, make_config(n, d=8, b=24), placement, BottleneckAdversary()
            )
            assert result.completed
            rounds.append(result.rounds)
        alpha, _ = fit_power_law(sizes, rounds)
        assert alpha > 1.5

    def test_coded_broadcast_scales_linearly_in_n(self, rng):
        """RLNC indexed broadcast rounds grow ~n for k = n (Lemma 5.3)."""
        sizes = [8, 16, 32]
        rounds = []
        for n in sizes:
            placement = one_token_per_node(n, 8, np.random.default_rng(n))
            result = run_dissemination(
                IndexedBroadcastNode, make_config(n, d=8, b=n + 32), placement, BottleneckAdversary()
            )
            assert result.completed
            rounds.append(result.rounds)
        alpha, _ = fit_power_law(sizes, rounds)
        assert alpha < 1.5

    def test_greedy_forward_improves_with_message_size(self, rng):
        """Theorem 2.3 shape: larger b reduces greedy-forward rounds."""
        n = 20
        placement = one_token_per_node(n, 8, rng)
        small = run_dissemination(
            GreedyForwardNode, make_config(n, d=8, b=40), placement, BottleneckAdversary()
        )
        large = run_dissemination(
            GreedyForwardNode, make_config(n, d=8, b=160), placement, BottleneckAdversary()
        )
        assert small.completed and large.completed
        assert large.rounds <= small.rounds
