"""Fixture: determinism violations (REP101 / REP102 / REP103).

Deliberately broken — excluded from the repo's own lint run.
"""

import os
import random
import time

import numpy as np


def stdlib_draw():
    return random.choice([1, 2, 3])


def stdlib_draw_allowed():
    return random.choice([1, 2, 3])  # repro: allow[REP101] fixture proves suppression works


def seedless():
    return np.random.default_rng()


def seeded_is_fine():
    return np.random.default_rng(1234)


def seedless_allowed():
    return np.random.default_rng()  # repro: allow[REP102] fixture proves suppression works


def global_seed():
    np.random.seed(0)


def global_sampler():
    return np.random.randint(0, 10)


def wall_clock():
    return time.perf_counter()


def wall_clock_allowed():
    # repro: allow[REP103] fixture proves the previous-line form works
    return time.perf_counter()


def entropy():
    return os.urandom(8)
