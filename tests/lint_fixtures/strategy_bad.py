"""Fixture: seedless randomness inside an adaptive FaultStrategy (REP102).

``plan_round`` receives the bound model's seeded generator every round;
a strategy that conjures its own unseeded stream breaks the byte-identical
replay contract the three engines are checked against.
"""

import numpy as np


class FaultStrategy:
    def bind(self, n, rng):
        return self


class SneakyLossStrategy(FaultStrategy):
    """Draws from a private, unseeded stream instead of the bound rng."""

    def plan_round(self, round_index, csr, down, rng):
        hidden = np.random.default_rng()
        if np.random.random() < 0.5:
            return None, hidden.integers(0, 4, size=1)
        return None, ()


class HonestLossStrategy(FaultStrategy):
    """Uses only the generator the fault layer passes in."""

    def plan_round(self, round_index, csr, down, rng):
        if rng.random() < 0.5:
            return None, rng.integers(0, 4, size=1)
        return None, ()


class WaivedReplayStrategy(FaultStrategy):
    """A deliberate waiver still needs the inline allow directive."""

    def plan_round(self, round_index, csr, down, rng):
        # repro: allow[REP102] fixture exercising the suppression path
        extra = np.random.default_rng()
        return None, extra.integers(0, 4, size=1)
