"""Fixture: unpicklable fault-model factories (REP201).

Scenario ``faults=`` factories ship into sweep worker processes exactly
like ``build=`` factories do; lambdas and closures must fire the same
rule on the new kwarg.
"""


def register_scenario(scenario):
    return scenario


class Scenario:
    def __init__(self, name, build, faults=None):
        self.name = name
        self.build = build
        self.faults = faults


def module_level_build(n, seed):
    return (n, seed)


def module_level_faults(n, seed):
    return ("loss", n, seed)


def ok_fault_registration():
    register_scenario(
        Scenario("fine", build=module_level_build, faults=module_level_faults)
    )


def bad_lambda_fault_registration():
    register_scenario(
        Scenario("broken", build=module_level_build, faults=lambda n, seed: ("loss", n))
    )


def bad_closure_fault_factory(loss):
    def bound_faults(n, seed):
        return ("loss", loss, n, seed)

    register_scenario(Scenario("broken", build=module_level_build, faults=bound_faults))


def fault_model_factory(loss):
    def build_model(n, seed):
        return ("loss", loss, n, seed)

    return build_model
