"""Fixture: wall-clock reads outside the sanctioned Clock seam (REP103).

The only sanctioned wall-clock call site in ``src/`` is
``repro.obs.clock.SystemClock.now`` (which carries a justified
``# repro: allow[REP103]``).  This fixture proves that a profiler-looking
module which reads the clock directly — instead of accepting an injected
:class:`~repro.obs.clock.Clock` — still fires REP103 everywhere.

Deliberately broken — excluded from the repo's own lint run.
"""

import time


class HomegrownClock:
    """A Clock look-alike: naming it a clock does not sanction the read."""

    def now(self) -> float:
        return time.perf_counter()


class InlineProfiler:
    """A profiler that times spans itself instead of taking a Clock."""

    def __enter__(self):
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.elapsed = time.perf_counter() - self.start


def sanctioned_seam_shape() -> float:
    # The one acceptable shape, as repro.obs.clock.SystemClock writes it:
    # a justified inline suppression on the single seam call site.
    return time.perf_counter()  # repro: allow[REP103] fixture mirrors the Clock seam's sanctioned form
