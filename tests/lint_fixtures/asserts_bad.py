"""Fixture: load-bearing asserts (REP403) and bad directives (REP001)."""


def guarded(value):
    assert value is not None
    return value


def guarded_allowed(value):
    assert value is not None  # repro: allow[REP403] fixture proves suppression works
    return value


def bad_directive_no_reason(value):
    assert value is not None  # repro: allow[REP403]
    return value


def bad_directive_unknown_rule(value):
    return value  # repro: allow[REP999] no such rule


def bad_directive_malformed(value):
    return value  # repro: allowing everything forever
