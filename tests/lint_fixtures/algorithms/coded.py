"""Fixture: whole-network batch leaking into per-node code (REP303).

Lives under an ``algorithms/`` directory on purpose.
"""

from repro.gf.packed import GF2BasisBatch


def per_node_logic(n, length):
    return GF2BasisBatch(n, length)
