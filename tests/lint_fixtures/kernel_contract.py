"""Fixture: kernel registration contract (REP301)."""


def register_kernel(node_class):
    def decorate(cls):
        return cls

    return decorate


class NodeClass:
    pass


class KernelBase:
    def supports(self, config):
        return True

    def to_nodes(self, nodes):
        return None


@register_kernel(NodeClass)
class CompleteKernel:
    def supports(self, config):
        return True

    def to_nodes(self, nodes):
        return None


@register_kernel(NodeClass)
class InheritedKernel(KernelBase):
    pass


@register_kernel(NodeClass)
class MissingBothKernel:
    pass


@register_kernel(NodeClass)
class MissingToNodesKernel:
    def supports(self, config):
        return True


@register_kernel(NodeClass)
# repro: allow[REP301] fixture proves suppression works
class WaivedKernel:
    pass
