"""Fixture: unpicklable factory violations (REP201)."""

from functools import partial


def register_scenario(scenario):
    return scenario


class Scenario:
    def __init__(self, name, build):
        self.name = name
        self.build = build


def module_level_build(n, seed):
    return (n, seed)


def ok_registrations():
    register_scenario(Scenario("fine", build=module_level_build))
    register_scenario(Scenario("fine-partial", build=partial(module_level_build, 8)))


def bad_lambda_registration():
    register_scenario(Scenario("broken", build=lambda n, seed: (n, seed)))


def bad_nested_registration():
    def nested_build(n, seed):
        return (n, seed)

    register_scenario(Scenario("broken", build=nested_build))


def allowed_lambda_registration():
    register_scenario(Scenario("waived", build=lambda n, seed: (n, seed)))  # repro: allow[REP201] fixture proves suppression works


def scenario_for(name, n, seed):
    return lambda: (name, n, seed)


def adversary_factory(n):
    def build():
        return n

    return build
