"""Fixture: hot-path violations in a kernel/packed module.

The basename ``kernels.py`` matches both the default kernel-module list
(REP302) and the packed-module list (REP401 / REP402).
"""

import numpy as np


class Subspace:
    pass


class Message:
    pass


class FakeKernel:
    def compose_all(self):
        space = Subspace()
        return space

    def compose_all_allowed(self):
        return Subspace()  # repro: allow[REP302] fixture proves suppression works

    def deliver_loop(self, rows):
        total = 0
        for i in range(len(rows)):
            total += int(np.sum(rows[i]))
        return total

    def deliver_loop_allowed(self, rows):
        total = 0
        for i in range(len(rows)):
            total += int(np.sum(rows[i]))  # repro: allow[REP401] fixture proves suppression works
        return total

    def round_loop_is_fine(self, rows):
        total = 0
        for round_index in range(4):
            total += int(np.sum(rows)) + round_index
        return total

    def to_nodes(self, nodes):
        for node in nodes:
            node.space = Subspace()
            node.message = Message()
        return nodes

    def upcast(self, words):
        return words / 2

    def upcast_allowed(self, words):
        return words / 2  # repro: allow[REP402] fixture proves suppression works

    def float_literal(self, words):
        return words * 0.5

    def floor_div_is_fine(self, words):
        return words // 2
