"""Fixture: seedless randomness inside a state-aware FaultStrategy (REP102).

State-aware strategies receive a read-only ``StateView`` of per-node
knowledge counts and coded ranks alongside the bound model's seeded
generator.  The view is for *targeting*; every random decision must still
come from the ``rng`` argument — a strategy that keys a private unseeded
stream off the protocol state breaks byte-identical replay exactly like
its state-blind cousins.
"""

import numpy as np


class FaultStrategy:
    wants_state = True

    def bind(self, n, rng):
        return self


class SneakyFrontierStrategy(FaultStrategy):
    """Reads the StateView but draws from a private, unseeded stream."""

    def plan_round(self, round_index, csr, down, rng, state):
        frontier = state.progress().argmax()
        hidden = np.random.default_rng()
        if np.random.random() < 0.5:
            return None, hidden.integers(0, frontier + 1, size=1)
        return None, ()


class HonestFrontierStrategy(FaultStrategy):
    """Targets by state, draws only from the generator the layer passes in."""

    def plan_round(self, round_index, csr, down, rng, state):
        frontier = state.progress().argmax()
        if rng.random() < 0.5:
            return None, rng.integers(0, frontier + 1, size=1)
        return None, ()


class WaivedFrontierStrategy(FaultStrategy):
    """A deliberate waiver still needs the inline allow directive."""

    def plan_round(self, round_index, csr, down, rng, state):
        # repro: allow[REP102] fixture exercising the suppression path
        extra = np.random.default_rng()
        return None, extra.integers(0, 4, size=1)
