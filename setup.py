"""Setup shim.

The environment this reproduction targets may lack the ``wheel`` package
(needed for PEP 660 editable installs with older setuptools); keeping a
``setup.py`` allows the legacy editable path::

    pip install -e . --no-build-isolation --no-use-pep517

All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
