"""E19: the batched GF(2) elimination core keeps coded workloads cheap.

Regression guard for the coded-kernel rewrite (stacked uint64 bases, fused
whole-inbox inserts, lazy sorted-order combines — see ``repro/gf/packed.py``
and ``repro/simulation/coded_kernels.py``).  The workload is the coding
family's stress case: RLNC indexed broadcast at n = k = 256 over per-round
shifted rings, where the pre-PR kernel spent its time in per-node Python
``Subspace`` calls (compose sort + XOR loop, insert reduction chains).

The recorded absolute numbers are in ``BENCH_CODED_KERNEL.json``: the
batched kernel at ~0.9 s per run vs ~4.2 s for the pre-PR Subspace-backed
kernel (measured at commit 4cf8fd3 on the same machine/workload/seed —
4.6x, against the 4x acceptance threshold) and ~5.6 s for the mask engine
(~6.1x).  All engines produce byte-identical ``RunMetrics`` for identical
seeds, so the comparison times implementations, not trajectories.

The *gating* assertions are (a) byte-identical metrics kernel vs mask at
n = 256 and across all three engines at n = 64, (b) a lenient 2.5x
engine-isolated floor vs the mask engine so shared CI runners cannot flake
the build while a disabled batched path (~1x) still fails, and (c) the
n = 512 scale point executes a fixed round budget on the kernel engine.
The live kernel-vs-mask ratio is recorded for
``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.algorithms import IndexedBroadcastNode
from repro.network import ShiftedRingAdversary
from repro.simulation import run_dissemination, standard_instance

from common import make_config, record_headline

BASELINE_FILE = Path(__file__).resolve().parent.parent / "BENCH_CODED_KERNEL.json"

N = 256
SCALE_N = 512
SCALE_ROUNDS = 60


def _one_run(engine: str, n: int = N, **kwargs):
    config = make_config(n, d=8, b=n + 16)
    placement = standard_instance(n, n, 8, seed=0)
    return run_dissemination(
        IndexedBroadcastNode,
        config,
        placement,
        ShiftedRingAdversary(),
        seed=0,
        engine=engine,
        **kwargs,
    )


def _best_of(engine: str, repeats: int = 2, **kwargs) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        _one_run(engine, **kwargs)
        times.append(time.perf_counter() - start)
    return min(times)


def test_e19_engines_identical_metrics():
    kernel = _one_run("kernel")
    mask = _one_run("mask")
    assert kernel.engine == "kernel" and mask.engine == "mask"
    assert kernel.completed and kernel.correct
    assert dataclasses.asdict(kernel.metrics) == dataclasses.asdict(mask.metrics)
    for kernel_node, mask_node in zip(kernel.nodes, mask.nodes):
        assert kernel_node.known_token_ids() == mask_node.known_token_ids()
    # All three engines, at a size where the legacy engine is still quick.
    small = {engine: _one_run(engine, n=64) for engine in ("kernel", "mask", "legacy")}
    reference = dataclasses.asdict(small["kernel"].metrics)
    assert dataclasses.asdict(small["mask"].metrics) == reference
    assert dataclasses.asdict(small["legacy"].metrics) == reference


def test_e19_coded_kernel_speedup(benchmark):
    baseline = json.loads(BASELINE_FILE.read_text())
    _one_run("kernel")  # warm imports/caches before timing
    fast = _best_of("kernel")
    mask = _best_of("mask")

    speedup = mask / fast
    print(
        f"\nE19 — batched coded kernel {fast:.3f}s vs mask engine {mask:.3f}s "
        f"on this machine: {speedup:.1f}x (recorded: "
        f"{baseline['speedup_vs_mask_engine']:.1f}x vs mask, "
        f"{baseline['speedup_vs_pre_pr_kernel']:.1f}x vs the pre-PR "
        f"Subspace-backed kernel, acceptance threshold "
        f"{baseline['acceptance_threshold']:.0f}x)"
    )
    record_headline("e19_coded_kernel_vs_mask", round(speedup, 2))
    assert speedup >= 2.5
    benchmark.pedantic(lambda: _one_run("kernel"), rounds=1, iterations=1)


def test_e19_kernel_scales_to_n512():
    start = time.perf_counter()
    result = _one_run("kernel", n=SCALE_N, max_rounds=SCALE_ROUNDS, stop_at_completion=False)
    elapsed = time.perf_counter() - start
    assert result.engine == "kernel"
    assert result.metrics.rounds_executed == SCALE_ROUNDS
    print(
        f"\nE19 scale point: n={SCALE_N} coded rounds at "
        f"{SCALE_ROUNDS / elapsed:.0f} rounds/s"
    )
