"""E21: round-trace telemetry overhead on the kernel engine.

The observability layer (``repro/obs``) promises that tracing is cheap and
inert: a :class:`~repro.obs.trace.TraceRecorder` attached to
``run_dissemination`` collects one columnar record per round with no
per-node Python on the kernel hot path, and never changes the execution.
Three measurements:

1. **Traced-vs-untraced headline** — per-round kernel wall time with a
   clock-free recorder attached versus the identical bare run.  The
   recorded ratio is sticky in ``BENCH_TRACE_OVERHEAD.json``;
   ``benchmarks/check_regression.py`` fails a run that regresses it by
   more than 25 %.
2. **Clocked tracing row** — the same comparison with a
   :class:`~repro.obs.clock.SystemClock` attached (phase timers live),
   recorded as data: the phase-profiler spans are the only addition.
3. **Inertness guard** — the traced run's ``RunMetrics`` must equal the
   untraced run's bit for bit, and the recorded per-round counter columns
   must sum to the final counters.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.algorithms import TokenForwardingNode
from repro.obs import SystemClock, TraceRecorder
from repro.scenarios import make_scenario
from repro.simulation import run_dissemination, standard_instance

from common import make_config, print_rows, record_headline

BASELINE_FILE = Path(__file__).resolve().parent.parent / "BENCH_TRACE_OVERHEAD.json"

#: Same scale as the e20 fault-overhead headline: large enough that the
#: kernel engine's vectorised round cost dominates the python loop shell.
N = 128


def _run(trace: TraceRecorder | None, seed: int = 0):
    config = make_config(N, k=N, d=8, b=max(64, N + 16))
    placement = standard_instance(N, N, 8, seed=seed)
    adversary = make_scenario("edge_markov", N, seed=seed)
    start = time.perf_counter()
    result = run_dissemination(
        TokenForwardingNode, config, placement, adversary, seed=seed,
        engine="kernel", trace=trace,
    )
    return result, time.perf_counter() - start


def _overhead_rows() -> tuple[list[dict], dict]:
    bare, bare_s = _run(None)
    recorder = TraceRecorder()
    traced, traced_s = _run(recorder)
    clocked_recorder = TraceRecorder(clock=SystemClock())
    clocked, clocked_s = _run(clocked_recorder)

    assert traced.metrics == bare.metrics, "tracing changed the execution"
    assert clocked.metrics == bare.metrics, "clocked tracing changed the execution"
    trace = recorder.to_trace()
    assert trace.rounds == bare.metrics.rounds_executed
    assert int(trace.arrays["broadcasts"].sum()) == bare.metrics.broadcasts
    assert int(trace.arrays["deliveries"].sum()) == bare.metrics.deliveries

    per_round = lambda seconds, result: seconds / max(1, result.metrics.rounds_executed)  # noqa: E731
    bare_pr = per_round(bare_s, bare)
    traced_pr = per_round(traced_s, traced)
    clocked_pr = per_round(clocked_s, clocked)
    rows = [
        {
            "mode": "untraced",
            "n": N,
            "ms_per_round": round(bare_pr * 1e3, 3),
            "overhead_ratio": 1.0,
        },
        {
            "mode": "traced",
            "n": N,
            "ms_per_round": round(traced_pr * 1e3, 3),
            "overhead_ratio": round(traced_pr / bare_pr, 2),
        },
        {
            "mode": "traced+clock",
            "n": N,
            "ms_per_round": round(clocked_pr * 1e3, 3),
            "overhead_ratio": round(clocked_pr / bare_pr, 2),
        },
    ]
    overhead = {
        "scenario": "edge_markov",
        "n": N,
        "rounds": bare.metrics.rounds_executed,
        "untraced_ms_per_round": rows[0]["ms_per_round"],
        "traced_ms_per_round": rows[1]["ms_per_round"],
        "clocked_ms_per_round": rows[2]["ms_per_round"],
        "overhead_ratio": rows[1]["overhead_ratio"],
        "clocked_overhead_ratio": rows[2]["overhead_ratio"],
    }
    return rows, overhead


def _recorded_headline_value(fallback: float) -> float:
    """The previously recorded headline reference, or ``fallback`` if none."""
    try:
        recorded = json.loads(BASELINE_FILE.read_text())["headline"]["value"]
        return float(recorded)
    except (OSError, KeyError, TypeError, ValueError, json.JSONDecodeError):
        return fallback


def _write_baseline(rows: list[dict], overhead: dict) -> None:
    BASELINE_FILE.write_text(
        json.dumps(
            {
                "description": (
                    "E21 round-trace telemetry overhead: per-round kernel wall "
                    "time with a TraceRecorder attached (columnar per-round "
                    "records; clock-free and clocked variants) versus the "
                    "identical untraced run at n=128."
                ),
                "rows": rows,
                "overhead": overhead,
                "headline": {
                    "name": "e21_trace_overhead_ratio",
                    # Sticky reference: keep the previously recorded value so
                    # check_regression.py compares the live figure against a
                    # real baseline instead of the number this very run just
                    # measured.
                    "value": _recorded_headline_value(overhead["overhead_ratio"]),
                    "larger_is_better": False,
                    "note": (
                        "recorded traced-vs-untraced per-round slowdown (sticky "
                        "across bench reruns); benchmarks/check_regression.py "
                        "fails a run more than 25% above this"
                    ),
                },
            },
            indent=1,
            sort_keys=True,
        )
        + "\n"
    )


def test_e21_trace_overhead_headline(benchmark):
    rows, overhead = _overhead_rows()
    _write_baseline(rows, overhead)
    print_rows("E21 — traced vs untraced kernel rounds", rows)
    print(
        f"\nE21 — trace overhead at n={N}: "
        f"{overhead['traced_ms_per_round']:.2f} ms/round traced vs "
        f"{overhead['untraced_ms_per_round']:.2f} ms/round untraced: "
        f"{overhead['overhead_ratio']:.2f}x"
    )
    record_headline(
        "e21_trace_overhead_ratio",
        overhead["overhead_ratio"],
        larger_is_better=False,
    )
    benchmark.pedantic(
        lambda: _run(TraceRecorder(), seed=1),
        rounds=1,
        iterations=1,
    )
