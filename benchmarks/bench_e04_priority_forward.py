"""E4 (Theorem 7.5 / Lemma 7.4): priority-forward for large message sizes.

Sweeps b in the regime where greedy-forward's additive nb term starts to
hurt; priority-forward keeps improving and stays competitive.  Both
protocol sweeps run on the process-parallel ``measure_sweep`` harness.
"""

from __future__ import annotations

from repro.algorithms import GreedyForwardNode, PriorityForwardNode
from repro.analysis import greedy_forward_rounds, priority_forward_rounds
from repro.network import BottleneckAdversary

from common import make_config, measure_sweep, print_rows, run_once


def _config_b(point):
    return make_config(24, d=8, b=int(point["b"]))


def test_e04_priority_forward_large_messages(benchmark):
    n = 24
    b_points = [{"b": b} for b in (64, 128, 256)]
    priority = measure_sweep(
        PriorityForwardNode, b_points, _config_b, BottleneckAdversary, repetitions=2
    )
    greedy = measure_sweep(
        GreedyForwardNode, b_points, _config_b, BottleneckAdversary, repetitions=2
    )
    rows = []
    for priority_point, greedy_point in zip(priority, greedy):
        b = int(priority_point.parameters["b"])
        rows.append(
            {
                "b": b,
                "priority_rounds": round(priority_point.measurement.rounds_mean, 1),
                "greedy_rounds": round(greedy_point.measurement.rounds_mean, 1),
                "predicted_priority~": round(priority_forward_rounds(n, n, 8, b), 1),
                "predicted_greedy~": round(greedy_forward_rounds(n, n, 8, b), 1),
            }
        )
    print_rows("E4 — priority-forward vs greedy-forward for large b (n=k=24, d=8)", rows)
    assert all(r["priority_rounds"] > 0 for r in rows)
    # priority-forward completes within a small factor of greedy-forward
    # everywhere and its rounds do not blow up as b grows.
    assert rows[-1]["priority_rounds"] <= 3 * rows[0]["priority_rounds"]
    benchmark.pedantic(
        lambda: run_once(PriorityForwardNode, make_config(24, d=8, b=128), BottleneckAdversary),
        rounds=1,
        iterations=1,
    )
