"""E5 (Corollary 7.1): the naive coded algorithm costs ~ nk log n / b rounds.

The point of this experiment is the *negative* shape result motivating
Section 7: flooding-based indexing wastes the coding advantage for small
tokens — naive-coded is only ~log n / d faster than forwarding and clearly
slower than greedy-forward at the same message size.
"""

from __future__ import annotations

from repro.algorithms import GreedyForwardNode, NaiveCodedNode, TokenForwardingNode
from repro.analysis import naive_coded_rounds
from repro.network import BottleneckAdversary

from common import make_config, measure_sweep, print_rows, run_once


def _config(point):
    return make_config(16, d=8, b=64)


def _measure(factory):
    # One point per protocol, still routed through the memoised harness so
    # repeated suite runs replay the measurement from the sweep cache.
    [point] = measure_sweep(factory, [{}], _config, BottleneckAdversary, repetitions=1)
    return point.measurement


def test_e05_naive_coded_vs_gathering(benchmark):
    n = 16
    b = 64
    rows = []
    naive = _measure(NaiveCodedNode)
    greedy = _measure(GreedyForwardNode)
    forwarding = _measure(TokenForwardingNode)
    rows.append(
        {
            "algorithm": "naive-coded (Cor 7.1)",
            "rounds": round(naive.rounds_mean, 1),
            "predicted~": round(naive_coded_rounds(n, n, 8, b), 1),
        }
    )
    rows.append({"algorithm": "greedy-forward (Thm 7.3)", "rounds": round(greedy.rounds_mean, 1), "predicted~": ""})
    rows.append({"algorithm": "token forwarding (Thm 2.1)", "rounds": round(forwarding.rounds_mean, 1), "predicted~": ""})
    print_rows(f"E5 — naive coded dissemination (n=k={n}, d=8, b={b})", rows)
    # The gathering-based algorithm beats the naive one, as Section 7 argues.
    assert greedy.rounds_mean < naive.rounds_mean
    benchmark.pedantic(
        lambda: run_once(NaiveCodedNode, make_config(12, d=8, b=48), BottleneckAdversary),
        rounds=1,
        iterations=1,
    )
