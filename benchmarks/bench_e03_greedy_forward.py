"""E3 (Theorems 2.3 / 7.3): greedy-forward gains quadratically from message size.

Fixes n = k and sweeps b; the dominant nkd/b^2 term should make the measured
rounds fall clearly faster with b than the token-forwarding baseline's
nkd/b, and coding should win the head-to-head at equal b.  Both protocol
sweeps run on the process-parallel ``measure_sweep`` harness.
"""

from __future__ import annotations

from repro.algorithms import GreedyForwardNode, TokenForwardingNode
from repro.analysis import greedy_forward_rounds, token_forwarding_rounds
from repro.network import BottleneckAdversary

from common import make_config, measure_sweep, print_rows, run_once


def _config_b(point):
    return make_config(24, d=8, b=int(point["b"]))


def test_e03_greedy_forward_message_size_sweep(benchmark):
    n = 24
    b_points = [{"b": b} for b in (48, 96, 192)]
    greedy = measure_sweep(
        GreedyForwardNode, b_points, _config_b, BottleneckAdversary, repetitions=2
    )
    forwarding = measure_sweep(
        TokenForwardingNode, b_points, _config_b, BottleneckAdversary, repetitions=2
    )
    rows = []
    for coded_point, forwarding_point in zip(greedy, forwarding):
        b = int(coded_point.parameters["b"])
        coded_m = coded_point.measurement
        forwarding_m = forwarding_point.measurement
        rows.append(
            {
                "b": b,
                "greedy_rounds": round(coded_m.rounds_mean, 1),
                "forwarding_rounds": round(forwarding_m.rounds_mean, 1),
                "speedup": round(forwarding_m.rounds_mean / max(1.0, coded_m.rounds_mean), 2),
                "predicted_greedy~": round(greedy_forward_rounds(n, n, 8, b), 1),
                "predicted_forwarding~": round(token_forwarding_rounds(n, n, 8, b), 1),
            }
        )
    print_rows("E3 — greedy-forward vs token forwarding across message sizes (n=k=24, d=8)", rows)
    # Theorem 2.3 direction: coding never loses, and the advantage does not
    # shrink as b grows (at laptop scale the +nb term caps it).
    assert all(r["greedy_rounds"] <= r["forwarding_rounds"] * 1.2 for r in rows)
    benchmark.pedantic(
        lambda: run_once(GreedyForwardNode, make_config(24, d=8, b=96), BottleneckAdversary),
        rounds=1,
        iterations=1,
    )
