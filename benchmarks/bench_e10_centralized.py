"""E10 (Corollary 2.6): centralized coded dissemination is Theta(n).

Sweeps n for the centralized protocol (free coefficient headers, trivial
indexing) and checks linear scaling, contrasting with the Omega(n log k)
lower bound for centralized token forwarding (Theorem 2.2).
"""

from __future__ import annotations

from repro.algorithms import CentralizedCodedNode
from repro.analysis import centralized_coded_rounds, centralized_token_forwarding_lower_bound
from repro.network import BottleneckAdversary
from repro.simulation import fit_power_law

from common import make_config, measure_sweep, print_rows, run_once


def _config_n(point):
    return make_config(int(point["n"]), d=8, b=16)


def test_e10_centralized_linear_time(benchmark):
    rows = []
    sizes = (8, 16, 32, 48)
    points = measure_sweep(
        CentralizedCodedNode,
        [{"n": n} for n in sizes],
        _config_n,
        BottleneckAdversary,
        repetitions=2,
    )
    measured = []
    for point in points:
        n = int(point.parameters["n"])
        m = point.measurement
        measured.append(m.rounds_mean)
        rows.append(
            {
                "n=k": n,
                "rounds": round(m.rounds_mean, 1),
                "Theta(n)": centralized_coded_rounds(n),
                "forwarding lower bound n*log k": round(
                    centralized_token_forwarding_lower_bound(n, n), 1
                ),
            }
        )
    print_rows("E10 — centralized coded dissemination (b = 16 bits, header free)", rows)
    alpha, _ = fit_power_law(sizes, measured)
    print(f"measured scaling exponent: {alpha:.2f} (theory: ~1)")
    assert alpha < 1.4
    benchmark.pedantic(
        lambda: run_once(CentralizedCodedNode, make_config(32, d=8, b=16), BottleneckAdversary),
        rounds=1,
        iterations=1,
    )
