"""Fail CI when a headline benchmark regresses > 25 % against its baseline.

Each headline bench records its live machine-normalised figure (an
engine-vs-engine speedup ratio, never absolute seconds) via
``benchmarks/common.py:record_headline`` when it runs; the corresponding
``BENCH_*.json`` at the repo root carries the recorded reference under a
``"headline"`` key.  This script compares every live figure against its
reference and exits non-zero if any is more than ``TOLERANCE`` below it
(for smaller-is-better headlines: above it).

Run after the bench smoke suite::

    PYTHONPATH=src python benchmarks/check_regression.py

Headlines without a live measurement are reported and skipped, so partial
bench runs never fail spuriously; ratios are used precisely because they
are comparable across machines, unlike wall-clock seconds.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
HEADLINE_DIR = ROOT / ".benchmarks" / "headlines"

#: A headline may fall this far (fractionally) below its recorded value
#: before the run is declared a regression.
TOLERANCE = 0.25


def _recorded_headlines() -> dict[str, dict]:
    headlines: dict[str, dict] = {}
    for path in sorted(ROOT.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        headline = data.get("headline")
        if isinstance(headline, dict) and "name" in headline and "value" in headline:
            headlines[str(headline["name"])] = {
                "value": float(headline["value"]),
                "larger_is_better": bool(headline.get("larger_is_better", True)),
                "source": path.name,
            }
    return headlines


def _live_headlines() -> dict[str, float]:
    import common  # benchmarks/ sibling; resolvable when run as a script

    current_digest = common._source_digest()
    live: dict[str, float] = {}
    if not HEADLINE_DIR.is_dir():
        return live
    for path in sorted(HEADLINE_DIR.glob("*.json")):
        try:
            data = json.loads(path.read_text())
            if data.get("source_digest") != current_digest:
                # Measured on a different version of the source tree — a
                # stale figure must neither pass nor fail today's code.
                print(f"  skip {data.get('name', path.stem)}: stale measurement")
                continue
            live[str(data["name"])] = float(data["value"])
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            continue
    return live


def check(tolerance: float = TOLERANCE) -> list[str]:
    """Return a list of regression messages (empty = all headlines healthy)."""
    recorded = _recorded_headlines()
    live = _live_headlines()
    failures: list[str] = []
    for name, reference in sorted(recorded.items()):
        measured = live.get(name)
        if measured is None:
            print(f"  skip {name}: no live measurement (bench not run)")
            continue
        value = reference["value"]
        if reference["larger_is_better"]:
            floor = value * (1.0 - tolerance)
            ok = measured >= floor
            bound = f">= {floor:.2f}"
        else:
            ceiling = value * (1.0 + tolerance)
            ok = measured <= ceiling
            bound = f"<= {ceiling:.2f}"
        status = "ok  " if ok else "FAIL"
        print(
            f"  {status} {name}: live {measured:.2f} vs recorded {value:.2f} "
            f"({reference['source']}, needs {bound})"
        )
        if not ok:
            failures.append(
                f"{name} regressed: live {measured:.2f} vs recorded {value:.2f} "
                f"in {reference['source']} (tolerance {tolerance:.0%})"
            )
    return failures


def main() -> int:
    print("headline regression check:")
    failures = check()
    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1
    print("no headline regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
