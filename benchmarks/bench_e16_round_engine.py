"""E16: the mask-native round engine keeps runner-bound workloads cheap.

Regression guard for the round-engine refactor (bitmask topologies with
identity-cached validation, lazy state views, incremental ``knowledge_mask``
completion tracking, neighbour-mask delivery).  The workload is chosen to be
*runner-bound*: 2000 rounds of token forwarding at n = k = 128 over shifted
rings, where the sparse topology keeps per-round protocol work small and the
per-round graph build / validation / snapshot / completion-check overhead
dominates.

Both engines run the identical round semantics in the same process:
``engine="mask"`` (the fast path) versus ``engine="legacy"`` (the original
networkx/frozenset data flow).  The recorded absolute numbers are in
``BENCH_ROUND_ENGINE.json``: 9.45 s at the pre-PR commit 2b4d621, 3.10 s on
the in-tree legacy engine (which shares this PR's TokenId/message caching),
1.36 s on the mask engine — 6.9x end-to-end, 2.3x engine-isolated against
the 2x acceptance threshold.  The *gating* assertions here are (a) the two
engines produce byte-identical metrics for identical seeds, and (b) a
lenient 1.4x engine-isolated floor so shared CI runners cannot flake the
build on timing noise while a disabled fast path (ratio ~1x) still fails.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.algorithms import TokenForwardingNode
from repro.network import ShiftedRingAdversary
from repro.simulation import run_dissemination, standard_instance

from common import make_config, record_headline

BASELINE_FILE = Path(__file__).resolve().parent.parent / "BENCH_ROUND_ENGINE.json"

N = 128
ROUNDS = 2000


def _one_run(engine: str):
    config = make_config(N, d=8, b=48)
    placement = standard_instance(N, N, 8, seed=0)
    return run_dissemination(
        TokenForwardingNode,
        config,
        placement,
        ShiftedRingAdversary(),
        seed=0,
        engine=engine,
        max_rounds=ROUNDS,
    )


def _best_of(engine: str, repeats: int = 2) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        _one_run(engine)
        times.append(time.perf_counter() - start)
    return min(times)


def test_e16_engines_identical_metrics():
    mask = _one_run("mask")
    legacy = _one_run("legacy")
    assert dataclasses.asdict(mask.metrics) == dataclasses.asdict(legacy.metrics)
    assert mask.correct == legacy.correct
    for mask_node, legacy_node in zip(mask.nodes, legacy.nodes):
        assert mask_node.known_token_ids() == legacy_node.known_token_ids()


def test_e16_round_engine_speedup(benchmark):
    baseline = json.loads(BASELINE_FILE.read_text())
    _one_run("mask")  # warm imports/caches before timing
    fast = _best_of("mask")
    legacy = _best_of("legacy")

    speedup = legacy / fast
    print(
        f"\nE16 — mask engine {fast:.3f}s vs legacy engine {legacy:.3f}s "
        f"on this machine: {speedup:.1f}x (recorded: {baseline['speedup_vs_legacy_engine']:.1f}x "
        f"engine-isolated, {baseline['speedup_vs_pre_pr']:.1f}x vs pre-PR commit, "
        f"acceptance threshold {baseline['acceptance_threshold']:.0f}x)"
    )
    record_headline("e16_mask_vs_legacy_engine", round(speedup, 2))
    assert speedup >= 1.4
    benchmark.pedantic(lambda: _one_run("mask"), rounds=1, iterations=1)
