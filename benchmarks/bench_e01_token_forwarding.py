"""E1 (Theorem 2.1): token forwarding needs ~ nkd/(bT) + n rounds, and is tight.

Regenerates the baseline curve: completion rounds of the phase-based
knowledge-based token-forwarding algorithm against the adaptive bottleneck
adversary, swept over n (with k = n, d = log n-ish) and over b, compared to
the predicted nkd/b + n.  Both sweeps run on the process-parallel
``measure_sweep`` harness with cross-run memoisation.
"""

from __future__ import annotations

import pytest

from repro.algorithms import TokenForwardingNode
from repro.analysis import token_forwarding_rounds
from repro.network import BottleneckAdversary
from repro.simulation import fit_power_law

from common import make_config, measure_sweep, print_rows, run_once


def _config_n(point):
    return make_config(int(point["n"]), d=8, b=24)


def _config_b(point):
    return make_config(24, d=8, b=int(point["b"]))


def _sweep_n(sizes=(8, 16, 24, 32)):
    points = measure_sweep(
        TokenForwardingNode,
        [{"n": n} for n in sizes],
        _config_n,
        BottleneckAdversary,
        repetitions=2,
    )
    return [
        {
            "n": int(p.parameters["n"]),
            "rounds": round(p.measurement.rounds_mean, 1),
            "predicted~": round(token_forwarding_rounds(int(p.parameters["n"]), int(p.parameters["n"]), 8, 24), 1),
        }
        for p in points
    ]


def _sweep_b(b_values=(16, 32, 64, 128)):
    n = 24
    points = measure_sweep(
        TokenForwardingNode,
        [{"b": b} for b in b_values],
        _config_b,
        BottleneckAdversary,
        repetitions=2,
    )
    return [
        {
            "b": int(p.parameters["b"]),
            "rounds": round(p.measurement.rounds_mean, 1),
            "predicted~": round(token_forwarding_rounds(n, n, 8, int(p.parameters["b"])), 1),
        }
        for p in points
    ]


def test_e01_forwarding_scales_quadratically_in_n(benchmark):
    rows = _sweep_n()
    print_rows("E1a — token forwarding rounds vs n (k=n, d=8, b=24)", rows)
    alpha, _ = fit_power_law([r["n"] for r in rows], [r["rounds"] for r in rows])
    print(f"measured scaling exponent in n: {alpha:.2f} (theory: ~2 for the nk term)")
    assert alpha > 1.5
    benchmark.pedantic(
        lambda: run_once(TokenForwardingNode, make_config(16, d=8, b=24), BottleneckAdversary),
        rounds=1,
        iterations=1,
    )


def test_e01_forwarding_scales_inversely_in_b(benchmark):
    rows = _sweep_b()
    print_rows("E1b — token forwarding rounds vs b (n=k=24, d=8)", rows)
    # Rounds should fall roughly linearly as b grows (until the +n floor).
    assert rows[0]["rounds"] > rows[-1]["rounds"]
    alpha, _ = fit_power_law([r["b"] for r in rows], [r["rounds"] for r in rows])
    print(f"measured scaling exponent in b: {alpha:.2f} (theory: ~-1 until the +n floor)")
    assert alpha < -0.3
    benchmark.pedantic(
        lambda: run_once(TokenForwardingNode, make_config(24, d=8, b=64), BottleneckAdversary),
        rounds=1,
        iterations=1,
    )
