"""E1 (Theorem 2.1): token forwarding needs ~ nkd/(bT) + n rounds, and is tight.

Regenerates the baseline curve: completion rounds of the phase-based
knowledge-based token-forwarding algorithm against the adaptive bottleneck
adversary, swept over n (with k = n, d = log n-ish) and over b, compared to
the predicted nkd/b + n.
"""

from __future__ import annotations

import pytest

from repro.algorithms import TokenForwardingNode
from repro.analysis import token_forwarding_rounds
from repro.network import BottleneckAdversary
from repro.simulation import fit_power_law

from common import make_config, measure_rounds, print_rows, run_once


def _sweep_n(sizes=(8, 16, 24, 32)):
    rows = []
    for n in sizes:
        config = make_config(n, d=8, b=24)
        m = measure_rounds(TokenForwardingNode, config, BottleneckAdversary, repetitions=2)
        rows.append(
            {
                "n": n,
                "rounds": round(m.rounds_mean, 1),
                "predicted~": round(token_forwarding_rounds(n, n, 8, 24), 1),
            }
        )
    return rows


def _sweep_b(n=24, b_values=(16, 32, 64, 128)):
    rows = []
    for b in b_values:
        config = make_config(n, d=8, b=b)
        m = measure_rounds(TokenForwardingNode, config, BottleneckAdversary, repetitions=2)
        rows.append(
            {
                "b": b,
                "rounds": round(m.rounds_mean, 1),
                "predicted~": round(token_forwarding_rounds(n, n, 8, b), 1),
            }
        )
    return rows


def test_e01_forwarding_scales_quadratically_in_n(benchmark):
    rows = _sweep_n()
    print_rows("E1a — token forwarding rounds vs n (k=n, d=8, b=24)", rows)
    alpha, _ = fit_power_law([r["n"] for r in rows], [r["rounds"] for r in rows])
    print(f"measured scaling exponent in n: {alpha:.2f} (theory: ~2 for the nk term)")
    assert alpha > 1.5
    benchmark.pedantic(
        lambda: run_once(TokenForwardingNode, make_config(16, d=8, b=24), BottleneckAdversary),
        rounds=1,
        iterations=1,
    )


def test_e01_forwarding_scales_inversely_in_b(benchmark):
    rows = _sweep_b()
    print_rows("E1b — token forwarding rounds vs b (n=k=24, d=8)", rows)
    # Rounds should fall roughly linearly as b grows (until the +n floor).
    assert rows[0]["rounds"] > rows[-1]["rounds"]
    alpha, _ = fit_power_law([r["b"] for r in rows], [r["rounds"] for r in rows])
    print(f"measured scaling exponent in b: {alpha:.2f} (theory: ~-1 until the +n floor)")
    assert alpha < -0.3
    benchmark.pedantic(
        lambda: run_once(TokenForwardingNode, make_config(24, d=8, b=64), BottleneckAdversary),
        rounds=1,
        iterations=1,
    )
