"""E7 (headline comparison, §2.3 bullet 1): coding beats every knowledge-based
token-forwarding algorithm even at b = Θ(log n)-scale messages.

Sweeps n with k = n and d fixed, running both families against the adaptive
bottleneck adversary, and reports the measured speedup next to the predicted
~log n / constant factor (for small b the paper predicts a Θ(log n)-factor
advantage at b = d = log n; with our honest id/count accounting the coded
message needs ~n + d bits, so we give both algorithms that same budget).
"""

from __future__ import annotations

from repro.algorithms import IndexedBroadcastNode, TokenForwardingNode
from repro.network import BottleneckAdversary
from repro.simulation import fit_power_law

from common import make_config, measure_sweep, print_rows, run_once


def _config_n(point):
    n = int(point["n"])
    return make_config(n, d=8, b=n + 32)


def test_e07_headline_speedup(benchmark):
    rows = []
    sizes = (8, 16, 32, 48)
    n_points = [{"n": n} for n in sizes]
    coded_points = measure_sweep(
        IndexedBroadcastNode, n_points, _config_n, BottleneckAdversary, repetitions=2
    )
    forwarding_points = measure_sweep(
        TokenForwardingNode, n_points, _config_n, BottleneckAdversary, repetitions=2
    )
    coded_rounds, forwarding_rounds = [], []
    for coded_point, forwarding_point in zip(coded_points, forwarding_points):
        n = int(coded_point.parameters["n"])
        coded = coded_point.measurement
        forwarding = forwarding_point.measurement
        coded_rounds.append(coded.rounds_mean)
        forwarding_rounds.append(forwarding.rounds_mean)
        rows.append(
            {
                "n=k": n,
                "coded_rounds": round(coded.rounds_mean, 1),
                "forwarding_rounds": round(forwarding.rounds_mean, 1),
                "speedup": round(forwarding.rounds_mean / max(1.0, coded.rounds_mean), 2),
            }
        )
    print_rows("E7 — RLNC vs knowledge-based forwarding, equal budgets", rows)
    alpha_coded, _ = fit_power_law(sizes, coded_rounds)
    alpha_forwarding, _ = fit_power_law(sizes, forwarding_rounds)
    print(
        f"scaling exponents — coded: {alpha_coded:.2f} (~1 expected), "
        f"forwarding: {alpha_forwarding:.2f} (~2 expected)"
    )
    # The lower-bound-breaking claim: the speedup grows with n.
    assert rows[-1]["speedup"] > rows[0]["speedup"]
    assert alpha_forwarding - alpha_coded > 0.5
    benchmark.pedantic(
        lambda: run_once(IndexedBroadcastNode, make_config(32, d=8, b=64), BottleneckAdversary),
        rounds=1,
        iterations=1,
    )
