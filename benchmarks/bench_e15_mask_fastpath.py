"""E15: the mask-native GF(2) fast path keeps indexed broadcast cheap.

Regression guard for the packed-wire-format refactor.  Both sides are
measured on the *same machine* in the same process: one full
IndexedBroadcastNode dissemination at n = k = 64 on the mask-native
pipeline, and the same run with ``GenerationState`` forced onto the generic
array pipeline (``_mask_native = False``) — the data flow the seed
implementation used, which reproduces its wall-clock almost exactly (see
``BENCH_MASK_FASTPATH.json`` for the recorded absolute numbers: 2.66 s seed
vs 0.41 s mask-native, 6.5x; measured same-machine ratio ~6x).  The printed
ratio is the evidence against the 3x acceptance threshold; the *gating*
assertion uses a lenient 1.5x floor so shared CI runners cannot flake the
build on timing noise while a disabled fast path (ratio ~1x) still fails.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.algorithms import IndexedBroadcastNode
from repro.coding.rlnc import GenerationState
from repro.network import BottleneckAdversary
from repro.simulation import run_dissemination, standard_instance

from common import make_config, record_headline

BASELINE_FILE = Path(__file__).resolve().parent.parent / "BENCH_MASK_FASTPATH.json"


def _one_run() -> None:
    # Pinned to the mask engine: this bench isolates the coding layer's
    # mask-native vs generic-array pipelines, and the kernel engine (which
    # "auto" would pick) bypasses GenerationState's pipeline switch.
    config = make_config(64, d=8, b=96)
    placement = standard_instance(64, 64, 8, seed=0)
    result = run_dissemination(
        IndexedBroadcastNode,
        config,
        placement,
        BottleneckAdversary(),
        seed=0,
        engine="mask",
    )
    assert result.completed and result.correct


def _best_of(repeats: int = 3) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        _one_run()
        times.append(time.perf_counter() - start)
    return min(times)


def test_e15_mask_fastpath_speedup(benchmark, monkeypatch):
    baseline = json.loads(BASELINE_FILE.read_text())
    _one_run()  # warm imports/caches before timing
    fast = _best_of()

    # Same run, generic array pipeline: the seed implementation's data flow.
    original_init = GenerationState.__init__

    def array_pipeline_init(self, generation):
        original_init(self, generation)
        self._mask_native = False

    monkeypatch.setattr(GenerationState, "__init__", array_pipeline_init)
    legacy = _best_of()
    monkeypatch.undo()

    speedup = legacy / fast
    print(
        f"\nE15 — mask-native {fast:.3f}s vs array pipeline {legacy:.3f}s "
        f"on this machine: {speedup:.1f}x (recorded vs seed commit: "
        f"{baseline['speedup']:.1f}x, acceptance threshold "
        f"{baseline['acceptance_threshold']:.0f}x)"
    )
    record_headline("e15_mask_fastpath_vs_array", round(speedup, 2))
    assert speedup >= 1.5
    benchmark.pedantic(_one_run, rounds=1, iterations=1)
