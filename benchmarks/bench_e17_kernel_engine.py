"""E17: the vectorised kernel engine keeps protocol-bound workloads cheap.

Regression guard for the kernel-engine refactor (packed knowledge matrices,
CSR adjacency delivery, whole-network compose/deliver array ops, dirty-row
compose caching — see ``repro/simulation/kernels.py``).  The workload is
chosen to be *protocol-bound*: token forwarding at n = k = 256 over
per-round shifted rings, where after PR 2 the per-round cost is dominated
by the O(n) Python ``compose``/``deliver``/snapshot calls the mask engine
still performs per node — exactly the dispatch the kernel engine removes.

Both engines run the identical round semantics in the same process:
``engine="kernel"`` versus ``engine="mask"``.  The recorded absolute
numbers are in ``BENCH_KERNEL_ENGINE.json`` (kernel ~0.17 s vs mask
~1.4 s on the 1200-round workload — ~8x against the 3x acceptance
threshold — and a fixed-round scaling sweep showing the kernel engine
executing n = 1024 networks at hundreds of rounds per second, a scale the
object engines cannot reach).  The *gating* assertions here are (a) the
two engines produce byte-identical metrics and node knowledge for
identical seeds, (b) a lenient 2x engine-isolated floor so shared CI
runners cannot flake the build on timing noise while a disabled kernel
path (ratio ~1x) still fails, and (c) the n = 1024 sweep point actually
executes its full round budget.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.algorithms import TokenForwardingNode
from repro.network import ShiftedRingAdversary
from repro.simulation import run_dissemination, standard_instance

from common import make_config, record_headline

BASELINE_FILE = Path(__file__).resolve().parent.parent / "BENCH_KERNEL_ENGINE.json"

N = 256
ROUNDS = 1200
SCALE_POINTS = (256, 512, 1024)
SCALE_ROUNDS = 400


def _one_run(engine: str, n: int = N, max_rounds: int = ROUNDS):
    config = make_config(n, d=8, b=48)
    placement = standard_instance(n, n, 8, seed=0)
    return run_dissemination(
        TokenForwardingNode,
        config,
        placement,
        ShiftedRingAdversary(),
        seed=0,
        engine=engine,
        max_rounds=max_rounds,
    )


def _best_of(engine: str, repeats: int = 2, **kwargs) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        _one_run(engine, **kwargs)
        times.append(time.perf_counter() - start)
    return min(times)


def test_e17_engines_identical_metrics():
    kernel = _one_run("kernel", max_rounds=600)
    mask = _one_run("mask", max_rounds=600)
    assert kernel.engine == "kernel" and mask.engine == "mask"
    assert dataclasses.asdict(kernel.metrics) == dataclasses.asdict(mask.metrics)
    assert kernel.correct == mask.correct
    for kernel_node, mask_node in zip(kernel.nodes, mask.nodes):
        assert kernel_node.known_token_ids() == mask_node.known_token_ids()


def test_e17_kernel_engine_speedup(benchmark):
    baseline = json.loads(BASELINE_FILE.read_text())
    _one_run("kernel")  # warm imports/caches before timing
    fast = _best_of("kernel")
    mask = _best_of("mask")

    speedup = mask / fast
    print(
        f"\nE17 — kernel engine {fast:.3f}s vs mask engine {mask:.3f}s "
        f"on this machine: {speedup:.1f}x (recorded: "
        f"{baseline['speedup_vs_mask_engine']:.1f}x, acceptance threshold "
        f"{baseline['acceptance_threshold']:.0f}x)"
    )
    record_headline("e17_kernel_vs_mask_engine", round(speedup, 2))
    assert speedup >= 2.0
    benchmark.pedantic(lambda: _one_run("kernel"), rounds=1, iterations=1)


def test_e17_kernel_scales_to_n1024():
    rows = []
    for n in SCALE_POINTS:
        start = time.perf_counter()
        result = _one_run("kernel", n=n, max_rounds=SCALE_ROUNDS)
        elapsed = time.perf_counter() - start
        assert result.engine == "kernel"
        assert result.metrics.rounds_executed == SCALE_ROUNDS
        rows.append(
            {"n": n, "rounds": SCALE_ROUNDS, "rounds_per_s": round(SCALE_ROUNDS / elapsed)}
        )
    print("\nE17 scaling sweep (kernel engine, fixed round budget):")
    for row in rows:
        print(f"  n={row['n']:5d}: {row['rounds_per_s']:6d} rounds/s")
    # The point of the sweep: n = 1024 executes its full budget at a rate
    # the object engines cannot approach (lenient floor for shared runners).
    assert rows[-1]["rounds_per_s"] >= 25
