"""Benchmark suite configuration.

Makes the sibling ``common`` helper importable regardless of how pytest sets
up ``sys.path`` for the (non-package) benchmarks directory.
"""

from __future__ import annotations

import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))
