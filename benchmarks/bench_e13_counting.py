"""E13 (Section 4.1 remark): counting by repeated doubling.

Runs the doubling driver on top of both a forwarding and a coded
dissemination protocol and checks the geometric-sum overhead claim: the
failed attempts with too-small guesses cost at most a small multiple of the
final successful run.
"""

from __future__ import annotations

from functools import partial

from repro.algorithms import IndexedBroadcastNode, TokenForwardingNode, count_nodes_via_doubling
from repro.network import RandomConnectedAdversary

from common import print_rows, sweep_map

_PROTOCOLS = {
    "token forwarding": TokenForwardingNode,
    "RLNC broadcast": IndexedBroadcastNode,
}


def _doubling_row(protocol: str, n_true: int) -> dict:
    """One doubling-driver outcome as a JSON-able row (sweep_map point)."""
    outcome = count_nodes_via_doubling(
        _PROTOCOLS[protocol], n_true=n_true, token_bits=8, b=96,
        adversary_factory=partial(RandomConnectedAdversary, seed=n_true),
    )
    return {
        "protocol": protocol,
        "true n": n_true,
        "estimate": outcome.estimate,
        "exact count found": outcome.exact_count,
        "attempts": outcome.attempts,
        "total_rounds": outcome.total_rounds,
        "final_run_rounds": outcome.final_rounds,
        "overhead_factor": round(outcome.overhead_factor, 2),
    }


def test_e13_counting_by_doubling(benchmark):
    rows = sweep_map(
        _doubling_row,
        [
            {"protocol": protocol, "n_true": n_true}
            for protocol in _PROTOCOLS
            for n_true in (10, 20)
        ],
    )
    print_rows("E13 — counting the network size by repeated doubling", rows)
    assert all(r["exact count found"] == r["true n"] for r in rows)
    assert all(r["true n"] <= r["estimate"] < 4 * r["true n"] for r in rows)
    benchmark.pedantic(
        lambda: count_nodes_via_doubling(
            TokenForwardingNode, n_true=8, token_bits=8, b=96,
            adversary_factory=lambda: RandomConnectedAdversary(seed=1),
        ),
        rounds=1,
        iterations=1,
    )
