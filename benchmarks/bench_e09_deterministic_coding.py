"""E9 (Theorem 6.1 / Corollary 6.2): derandomized coding and its overhead.

Two parts:

* the quantitative side of the witness-counting argument — for the
  theorem's field size the union bound succeeds, for small fields it fails;
* executable runs of the schedule-driven deterministic indexed broadcast
  against adaptive and omniscient adversaries, reporting rounds and the
  (quadratically larger) coefficient-header cost.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import DeterministicIndexedBroadcastNode, deterministic_broadcast_config
from repro.algorithms.base import ProtocolConfig
from repro.coding import (
    deterministic_header_bits,
    omniscient_field_order,
    union_bound_holds,
    union_bound_margin_log2,
)
from repro.network import BottleneckAdversary, OmniscientBottleneckAdversary
from repro.simulation import run_dissemination
from repro.tokens import make_tokens, place_tokens

from common import print_rows, sweep_map

_ADVERSARIES = {
    "adaptive": BottleneckAdversary,
    "omniscient": OmniscientBottleneckAdversary,
}


def _run_deterministic(n: int, k: int, adversary: str, seed: int = 0) -> int:
    """One schedule-driven run (sweep_map point; adversary passed by name)."""
    rng = np.random.default_rng(seed)
    tokens = make_tokens(k, 8, rng)
    placement = place_tokens(tokens, n, rng)
    index_of = {t.token_id: i for i, t in enumerate(tokens)}
    base = deterministic_broadcast_config(n, k, 8, schedule_seed=seed)
    config = ProtocolConfig(
        n=n, k=k, token_bits=8, budget=base.budget, field_order=base.field_order,
        extra={**dict(base.extra), "index_of": index_of},
    )
    result = run_dissemination(
        DeterministicIndexedBroadcastNode, config, placement, _ADVERSARIES[adversary](),
        seed=seed, max_rounds=40 * n,
    )
    assert result.completed and result.correct
    return result.rounds


def test_e09_union_bound_table(benchmark):
    rows = []
    for n, k in [(8, 2), (16, 3), (32, 4)]:
        q = omniscient_field_order(n, k)
        rows.append(
            {
                "n": n,
                "k": k,
                "field_order q": q,
                "log2(witnesses * q^-n)": round(union_bound_margin_log2(n, k, q), 1),
                "union_bound_ok": union_bound_holds(n, k, q),
                "union_bound_ok_at_q=2": union_bound_holds(n, k, 2),
                "header_bits (k^2 log n)": deterministic_header_bits(n, k),
            }
        )
    print_rows("E9a — Theorem 6.1 field sizes and witness-counting margins", rows)
    assert all(r["union_bound_ok"] for r in rows)
    assert not any(r["union_bound_ok_at_q=2"] for r in rows)
    benchmark.pedantic(lambda: omniscient_field_order(32, 4), rounds=1, iterations=1)


def test_e09_deterministic_broadcast_runs(benchmark):
    rows = []
    cases = [(6, 2), (8, 3)]
    adaptive = sweep_map(
        _run_deterministic,
        [{"n": n, "k": k, "adversary": "adaptive", "seed": 1} for n, k in cases],
    )
    omniscient = sweep_map(
        _run_deterministic,
        [{"n": n, "k": k, "adversary": "omniscient", "seed": 2} for n, k in cases],
    )
    for (n, k), adaptive_rounds, omniscient_rounds in zip(cases, adaptive, omniscient):
        rows.append(
            {
                "n": n,
                "k": k,
                "rounds_vs_adaptive": adaptive_rounds,
                "rounds_vs_omniscient": omniscient_rounds,
                "O(n+k)": n + k,
            }
        )
    print_rows("E9b — deterministic (schedule-driven) indexed broadcast", rows)
    assert all(r["rounds_vs_omniscient"] <= 10 * r["O(n+k)"] for r in rows)
    benchmark.pedantic(
        lambda: _run_deterministic(6, 2, "adaptive", seed=3), rounds=1, iterations=1
    )
