"""E11 (Section 2.3 bullet list): the paper's parameter instantiations.

This regenerates the "interesting value instantiations" as a table from the
closed-form bounds (they concern asymptotic regimes far beyond simulation
scale) and spot-checks the executable ones at laptop scale.  The rows ride
``sweep_map`` for uniformity with the rest of the suite (the formulas are
microsecond-cheap, so the memo/parallelism are incidental here).
"""

from __future__ import annotations

import math

from repro.analysis import (
    coded_dissemination_rounds,
    linear_time_message_size_coded,
    linear_time_message_size_forwarding,
    stability_for_near_linear_time,
    token_forwarding_rounds,
)

from common import print_rows, sweep_map

_N = 2**14


def _instantiation_row(bullet: int, n: int = _N) -> dict:
    """One Section 2.3 bullet as a table row (sweep_map point)."""
    log_n = int(math.log2(n))
    if bullet == 1:
        # Bullet 1: b = d = log n, k = n — coding wins by ~log n.
        return {
            "instantiation": "b=d=log n, k=n (counting case)",
            "forwarding~": f"{token_forwarding_rounds(n, n, log_n, log_n):.3g}",
            "coding~": f"{coded_dissemination_rounds(n, n, log_n, log_n):.3g}",
            "paper claim": "coding faster by Theta(log n)",
        }
    if bullet == 2:
        # Bullet 2: message size needed for linear-time counting.
        return {
            "instantiation": "b for linear-time counting (d=log n, k=n)",
            "forwarding~": f"{linear_time_message_size_forwarding(n):.3g}",
            "coding~": f"{linear_time_message_size_coded(n):.3g}",
            "paper claim": "sqrt(n log n) suffices with coding vs n log n",
        }
    # Bullet 3: stability needed for near-linear n-token dissemination.
    return {
        "instantiation": "T for near-linear dissemination",
        "forwarding~": f"{n ** 0.999:.3g} (essentially static)",
        "coding~": (
            f"{stability_for_near_linear_time(n):.3g} randomized / "
            f"{stability_for_near_linear_time(n, deterministic=True):.3g} deterministic"
        ),
        "paper claim": "sqrt(n) (rand.) and n^(2/3) (det.) suffice",
    }


def test_e11_value_instantiations(benchmark):
    n = _N
    log_n = int(math.log2(n))
    rows = sweep_map(_instantiation_row, [{"bullet": bullet} for bullet in (1, 2, 3)])
    print_rows("E11 — Section 2.3 value instantiations (n = 2^14)", rows)

    ratio = token_forwarding_rounds(n, n, log_n, log_n) / coded_dissemination_rounds(
        n, n, log_n, log_n
    )
    print(f"counting-case speedup at n=2^14: {ratio:.2f} (log2 n = {log_n})")
    assert ratio > 2
    assert linear_time_message_size_coded(n) < linear_time_message_size_forwarding(n)
    benchmark.pedantic(lambda: coded_dissemination_rounds(n, n, log_n, log_n), rounds=1, iterations=1)
