"""E18: the dynamic-network scenario catalog on the kernel engine.

The dynamics subsystem (``repro/network/dynamics.py`` + ``repro/scenarios``)
exists because topology *generation* became the scenario bottleneck once the
kernel engine made round *execution* cheap: every pre-PR adversary builds
its round graph with per-edge Python, while a :class:`ScheduleAdversary`
streams whole batches of packed adjacency matrices out of vectorised
processes.

Two measurements:

1. **Catalog completeness** — every registered scenario runs token
   forwarding to completion on the kernel engine (``RunResult.engine ==
   "kernel"``), recording completion rounds and executed rounds/s.  This is
   the gate that keeps the whole catalog engine-eligible (a scenario that
   silently dropped to the mask engine would betray a ``sees_messages`` or
   validation regression).
2. **Generation throughput** — producing engine-ready (packed) topologies
   from a T-interval-enforced edge-Markov schedule at n = 512, against the
   per-round Python ``RandomConnectedAdversary`` baseline at identical n.
   The acceptance floor is 1x (schedule generation must not be slower than
   the old per-round path); the recorded ratio on the reference machine is
   in ``BENCH_SCENARIOS.json``.

Both sets of rows are rewritten into ``BENCH_SCENARIOS.json`` on every run
(CI uploads it with the other ``BENCH_*.json`` artifacts).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.algorithms import TokenForwardingNode
from repro.network import RandomConnectedAdversary
from repro.scenarios import SCENARIOS, list_scenarios, make_scenario, scenario_for
from repro.simulation import run_dissemination, standard_instance

from common import make_config, print_rows, record_headline

BASELINE_FILE = Path(__file__).resolve().parent.parent / "BENCH_SCENARIOS.json"

#: Completion runs: small enough that the whole catalog stays CI-cheap.
N_CATALOG = 64
#: Generation throughput: the acceptance criterion's n >= 512 point.
N_GENERATION = 512
GENERATION_ROUNDS = 64


def _run_scenario(name: str, n: int = N_CATALOG, seed: int = 0):
    config = make_config(n, d=8, b=64)
    placement = standard_instance(n, n, 8, seed=seed)
    adversary = scenario_for(name, n, seed=seed)()  # the declarative sweep path
    start = time.perf_counter()
    result = run_dissemination(
        TokenForwardingNode, config, placement, adversary, seed=seed, engine="kernel"
    )
    elapsed = time.perf_counter() - start
    return result, elapsed


_CATALOG_ROWS: list[dict] | None = None


def _catalog_rows() -> list[dict]:
    # Two tests consume the catalog rows (the gate and the JSON write-out);
    # run the 8 dissemination runs once per pytest session, not twice.
    global _CATALOG_ROWS
    if _CATALOG_ROWS is not None:
        return _CATALOG_ROWS
    rows = []
    for name in list_scenarios():
        result, elapsed = _run_scenario(name)
        assert result.engine == "kernel", f"{name} fell off the kernel engine"
        assert result.completed and result.correct, f"{name} did not disseminate"
        rows.append(
            {
                "scenario": name,
                "process": SCENARIOS[name].process,
                "guarantees": "+".join(SCENARIOS[name].guarantees),
                "n": N_CATALOG,
                "completion_rounds": result.rounds,
                "rounds_per_s": round(result.metrics.rounds_executed / elapsed),
            }
        )
    _CATALOG_ROWS = rows
    return rows


def _time_generation(adversary, rounds: int, n: int, repeats: int = 2) -> float:
    """Best-of wall time to serve ``rounds`` engine-ready packed topologies."""
    best = float("inf")
    for _ in range(repeats):
        adversary.reset()
        start = time.perf_counter()
        for round_index in range(rounds):
            adversary.choose_topology(round_index, n, []).packed_adjacency()
        best = min(best, time.perf_counter() - start)
    return best


def _generation_row() -> dict:
    schedule = make_scenario("edge_markov_t4", N_GENERATION, seed=0)
    baseline = RandomConnectedAdversary(seed=0)
    schedule_s = _time_generation(schedule, GENERATION_ROUNDS, N_GENERATION)
    baseline_s = _time_generation(baseline, GENERATION_ROUNDS, N_GENERATION)
    return {
        "scenario": "edge_markov_t4",
        "baseline": "random_connected (per-round Python)",
        "n": N_GENERATION,
        "rounds": GENERATION_ROUNDS,
        "schedule_s": round(schedule_s, 4),
        "baseline_s": round(baseline_s, 4),
        "speedup_vs_random_connected": round(baseline_s / schedule_s, 2),
        "acceptance_threshold": 1.0,
    }


def _recorded_headline_value(fallback: float) -> float:
    """The previously recorded headline reference, or ``fallback`` if none."""
    try:
        recorded = json.loads(BASELINE_FILE.read_text())["headline"]["value"]
        return float(recorded)
    except (OSError, KeyError, TypeError, ValueError, json.JSONDecodeError):
        return fallback


def _write_baseline(catalog: list[dict], generation: dict) -> None:
    BASELINE_FILE.write_text(
        json.dumps(
            {
                "description": (
                    "E18 scenario catalog on the kernel engine: completion rounds and "
                    "rounds/s per registered scenario at n=64, plus packed-schedule "
                    "generation throughput (T-interval-enforced edge-Markov, n=512) "
                    "vs the per-round Python RandomConnectedAdversary baseline."
                ),
                "catalog": catalog,
                "generation": generation,
                "headline": {
                    "name": "e18_schedule_generation_vs_python",
                    # Sticky reference: keep the previously recorded value so
                    # check_regression.py compares the live figure against a
                    # real baseline instead of the number this very run just
                    # measured.
                    "value": _recorded_headline_value(
                        generation["speedup_vs_random_connected"]
                    ),
                    "larger_is_better": True,
                    "note": (
                        "recorded schedule-generation ratio (sticky across "
                        "bench reruns); benchmarks/check_regression.py fails "
                        "a run more than 25% below this"
                    ),
                },
            },
            indent=1,
            sort_keys=True,
        )
        + "\n"
    )


def test_e18_catalog_runs_on_kernel_engine():
    rows = _catalog_rows()
    assert len(rows) == len(SCENARIOS)
    print_rows("E18 — scenario catalog, token forwarding, kernel engine", rows)


def test_e18_schedule_generation_beats_python_baseline(benchmark):
    generation = _generation_row()
    catalog = _catalog_rows()
    _write_baseline(catalog, generation)
    print(
        f"\nE18 — packed schedule generation at n={N_GENERATION}: "
        f"{generation['schedule_s']:.3f}s vs {generation['baseline_s']:.3f}s "
        f"per-round Python baseline over {GENERATION_ROUNDS} rounds: "
        f"{generation['speedup_vs_random_connected']:.1f}x "
        f"(acceptance threshold {generation['acceptance_threshold']:.0f}x)"
    )
    record_headline(
        "e18_schedule_generation_vs_python",
        generation["speedup_vs_random_connected"],
    )
    assert generation["speedup_vs_random_connected"] > 1.0
    schedule = make_scenario("edge_markov_t4", N_GENERATION, seed=1)
    benchmark.pedantic(
        lambda: _time_generation(schedule, GENERATION_ROUNDS, N_GENERATION, repeats=1),
        rounds=1,
        iterations=1,
    )


def test_e18_deterministic_replay_in_sweeps():
    # The sweep-reuse contract on a live catalog entry: one adversary object,
    # two runs, identical measurements.
    first, _ = _run_scenario("waypoint_churn_t4", seed=3)
    second, _ = _run_scenario("waypoint_churn_t4", seed=3)
    assert first.rounds == second.rounds
    assert first.metrics.total_message_bits == second.metrics.total_message_bits
