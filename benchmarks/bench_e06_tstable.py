"""E6 (Theorem 2.4 / Lemma 8.1): stability helps coding more than forwarding.

Sweeps the stability parameter T with everything else fixed and compares the
T-stable patch-sharing coded protocol against pipelined token forwarding.
The paper predicts a T^2-shaped benefit for coding versus a T-shaped (and no
better) benefit for knowledge-based forwarding; at laptop scale we check the
direction: coding's relative gain from increasing T is at least as large as
forwarding's, and the patch protocol's absolute rounds shrink as T grows.
"""

from __future__ import annotations

from functools import partial

from repro.algorithms import PipelinedTokenForwardingNode, make_tstable_factory
from repro.analysis import token_forwarding_rounds, tstable_coded_rounds
from repro.network import PathShuffleAdversary, TStableAdversary
from repro.simulation import run_dissemination, standard_instance

from common import make_config, measure_sweep, print_rows


def _tstable_adversary(stability: int, seed: int = 1) -> TStableAdversary:
    return TStableAdversary(PathShuffleAdversary(seed=seed), stability)


def _patch_config(point):
    n = 24
    return make_config(n, d=8, b=n + 32, stability=int(point["T"]))


def _patch_factory(point):
    return make_tstable_factory(_patch_config(point), seed=0)


def _forwarding_config(point):
    return make_config(24, d=8, b=24, stability=int(point["T"]))


def _adversary_for(point):
    return partial(_tstable_adversary, int(point["T"]))


def _run_patch(n: int, stability: int, seed: int = 0) -> int:
    """One direct patch-protocol run (used for the wall-clock fixture)."""
    config = make_config(n, d=8, b=n + 32, stability=stability)
    placement = standard_instance(n, None, 8, seed=seed)
    factory = make_tstable_factory(config, seed=seed)
    adversary = TStableAdversary(PathShuffleAdversary(seed=seed + 1), stability)
    result = run_dissemination(factory, config, placement, adversary, seed=seed)
    assert result.completed
    return result.rounds


def test_e06_stability_sweep(benchmark):
    n = 24
    # Both sweeps ride measure_sweep (per-point factories and adversaries are
    # picklable: TStablePatchFactory and a partial of a module-level builder),
    # with base_seed=0 reproducing the pre-harness run seeds exactly.
    t_points = [{"T": stability} for stability in (2, 8, 24)]
    patch_points = measure_sweep(
        None,
        t_points,
        _patch_config,
        repetitions=1,
        factory_for=_patch_factory,
        adversary_for=_adversary_for,
        base_seed=0,
    )
    forwarding_points = measure_sweep(
        PipelinedTokenForwardingNode,
        t_points,
        _forwarding_config,
        repetitions=1,
        adversary_for=_adversary_for,
        base_seed=0,
    )
    rows = []
    for patch_point, forwarding_point in zip(patch_points, forwarding_points):
        stability = int(patch_point.parameters["T"])
        assert patch_point.measurement.all_completed
        assert forwarding_point.measurement.all_completed
        coded = patch_point.measurement.rounds_min
        forwarding = forwarding_point.measurement.rounds_min
        rows.append(
            {
                "T": stability,
                "patch_coding_rounds": coded,
                "coding_meta_rounds (rounds/T)": round(coded / stability, 1),
                "pipelined_forwarding_rounds": forwarding,
                "predicted_coded~": round(tstable_coded_rounds(n, n, 8, n + 32, stability), 1),
                "predicted_forwarding~": round(token_forwarding_rounds(n, n, 8, 24, stability), 1),
            }
        )
    print_rows("E6 — T-stability sweep (n=k=24, d=8)", rows)
    # What the executable (structured) reproduction demonstrates at laptop
    # scale: the patch-sharing protocol is correct under every stability
    # level, the number of share-pass-share meta-rounds it needs stays flat
    # as T grows (each topology change costs it a bounded amount of work),
    # and at comparable stability it beats pipelined token forwarding.  The
    # full T^2-vs-T round separation additionally requires the (bT)-bit
    # super-block packing of Section 8.3, which this bench reports through
    # the predicted columns and which is checked as a formula-level property
    # in tests/test_analysis_and_integration.py (see EXPERIMENTS.md).
    meta_rounds = [r["coding_meta_rounds (rounds/T)"] for r in rows]
    print(f"meta-rounds per topology change: {meta_rounds}")
    assert max(meta_rounds) <= 2 * min(meta_rounds)
    assert rows[0]["patch_coding_rounds"] < rows[0]["pipelined_forwarding_rounds"]
    benchmark.pedantic(lambda: _run_patch(16, 8, seed=3), rounds=1, iterations=1)
