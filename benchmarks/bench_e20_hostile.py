"""E20: the hostile-network fault axis on the kernel engine.

The fault layer (``repro/network/faults.py``) edits each round's CSR
adjacency instead of simulating faults per node, so hostile runs must stay
kernel-eligible and close to benign-run throughput.  Three measurements:

1. **Hostile catalog completeness** — every fault-carrying scenario entry
   runs token forwarding on the kernel engine (``RunResult.engine ==
   "kernel"``), recording survivors, surviving completion rate, and
   completion rounds.  A hostile entry that silently fell back to the mask
   or legacy engine would betray an eligibility regression.
2. **Degradation curves into the failure regime** — three protocols (token
   forwarding, random forward, indexed broadcast) swept over loss
   intensities deliberately extended past the point where runs stop
   completing, recording partial ``surviving_rate`` points and
   ``completion_round = None`` instead of asserting success.  At least one
   swept point must show ``surviving_rate < 1.0``.
3. **Fault overhead headline** — per-round kernel wall time with a
   loss+duplication model active versus the identical benign run.  The
   recorded ratio is sticky in ``BENCH_HOSTILE.json``;
   ``benchmarks/check_regression.py`` fails a run that regresses it by
   more than 25 %.
4. **Adaptive-adversary overhead headline** — the same per-round comparison
   with an adaptive :class:`BridgeLossStrategy` consulted every round (live
   spanning-forest + cut-edge analysis), sticky in
   ``BENCH_HOSTILE_ADAPTIVE.json`` under its own regression guard.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.algorithms import (
    IndexedBroadcastNode,
    RandomForwardNode,
    TokenForwardingNode,
)
from repro.network import BridgeLossStrategy, FaultModel
from repro.scenarios import SCENARIOS, fault_model_for, hostile_scenarios, make_scenario
from repro.simulation import run_dissemination, standard_instance

from common import make_config, print_rows, record_headline

BASELINE_FILE = Path(__file__).resolve().parent.parent / "BENCH_HOSTILE.json"
ADAPTIVE_BASELINE_FILE = (
    Path(__file__).resolve().parent.parent / "BENCH_HOSTILE_ADAPTIVE.json"
)

#: Hostile catalog + degradation sweeps: small enough to stay CI-cheap.
N = 48
#: Three highest uids stay payload-free (standard_instance places tokens at
#: uids 0..k-1), so Byzantine senders at n-2 / n-1 and the three fake quorum
#: members at n-3 .. n-1 never hold tokens.
K = N - 3
#: Token forwarding needs ~0.3 * n * k rounds benign (see BENCH_SCENARIOS);
#: leave headroom for lossy runs while keeping non-completion observable.
MAX_ROUNDS = 3000

PROTOCOLS = {
    "token_forwarding": TokenForwardingNode,
    "random_forward": RandomForwardNode,
    "indexed_broadcast": IndexedBroadcastNode,
}
#: The tail intensities are deliberately in the failure regime: runs that
#: never finish within MAX_ROUNDS record ``completion_round = None`` and a
#: partial ``surviving_rate`` instead of failing the bench.
LOSS_INTENSITIES = (0.1, 0.25, 0.5, 0.75, 0.9, 0.97)

#: Fault-overhead headline: benign vs faulted kernel throughput at this n.
N_OVERHEAD = 128


def _run(factory, n, k, scenario, faults, seed=0):
    config = make_config(n, k=k, d=8, b=max(64, n + 16))
    placement = standard_instance(n, k, 8, seed=seed)
    adversary = make_scenario(scenario, n, seed=seed)
    start = time.perf_counter()
    result = run_dissemination(
        factory, config, placement, adversary, seed=seed, engine="kernel",
        faults=faults, max_rounds=MAX_ROUNDS, track_progress=True,
    )
    return result, time.perf_counter() - start


def _axes(model: FaultModel) -> str:
    axes = []
    if model.loss:
        axes.append(f"loss={model.loss}")
    if model.duplication:
        axes.append(f"dup={model.duplication}")
    if model.crashes:
        recovering = sum(1 for entry in model.crashes if len(entry) == 3)
        label = f"crashes={len(model.crashes)}"
        if recovering:
            label += f"({recovering}rec)"
        axes.append(label)
    if model.byzantine:
        axes.append(f"byz={len(model.byzantine)}:{model.byzantine_mode}")
    if model.partitions is not None:
        axes.append(
            f"partitions={len(model.partitions.windows)}x{model.partitions.groups}"
        )
    if model.strategy is not None:
        axes.append(f"strategy={type(model.strategy).__name__}")
    if model.collisions is not None:
        label = f"collisions(p={model.collisions.probability}"
        if model.collisions.capture:
            label += ",capture"
        axes.append(label + ")")
    if model.quorum is not None:
        axes.append(f"quorum_fake={len(model.quorum.fake)}")
    return "+".join(axes)


_CATALOG_ROWS: list[dict] | None = None


def _catalog_rows() -> list[dict]:
    global _CATALOG_ROWS
    if _CATALOG_ROWS is not None:
        return _CATALOG_ROWS
    rows = []
    for name in hostile_scenarios():
        model = fault_model_for(name, N, seed=0)
        result, elapsed = _run(TokenForwardingNode, N, K, name, model)
        assert result.engine == "kernel", f"{name} fell off the kernel engine"
        metrics = result.metrics
        assert metrics.survivors is not None, f"{name} recorded no fault accounting"
        rate = metrics.surviving_completion_rate
        rows.append(
            {
                "scenario": name,
                "faults": _axes(model),
                "process": SCENARIOS[name].process,
                "n": N,
                "survivors": metrics.survivors,
                "surviving_rate": round(rate, 3) if rate is not None else None,
                "completion_round": metrics.survivor_completion_round,
                "dropped": metrics.dropped_deliveries,
                "corrupted": metrics.corrupted_deliveries,
                "collided": metrics.collided_deliveries,
                "recoveries": metrics.recoveries,
                "rounds_per_s": round(metrics.rounds_executed / elapsed),
            }
        )
    _CATALOG_ROWS = rows
    return rows


def _degradation_rows() -> list[dict]:
    rows = []
    for protocol, factory in PROTOCOLS.items():
        benign, _ = _run(factory, N, K, "edge_markov", None)
        rows.append(
            {
                "protocol": protocol,
                "loss": 0.0,
                "surviving_rate": 1.0 if benign.completed else 0.0,
                "completion_round": benign.rounds,
            }
        )
        assert benign.completed, f"{protocol} must complete the benign baseline"
        for loss in LOSS_INTENSITIES:
            result, _ = _run(factory, N, K, "edge_markov", FaultModel(loss=loss))
            metrics = result.metrics
            rate = metrics.surviving_completion_rate
            # Failure-regime points are recorded, not asserted away: a run
            # that hits MAX_ROUNDS keeps completion_round = None and its
            # partial surviving rate.
            rows.append(
                {
                    "protocol": protocol,
                    "loss": loss,
                    "surviving_rate": round(rate, 3) if rate is not None else None,
                    "completion_round": metrics.survivor_completion_round,
                }
            )
    return rows


def _overhead_row() -> dict:
    model = FaultModel(loss=0.15, duplication=0.1)
    benign, benign_s = _run(TokenForwardingNode, N_OVERHEAD, N_OVERHEAD, "edge_markov", None)
    faulted, faulted_s = _run(TokenForwardingNode, N_OVERHEAD, N_OVERHEAD, "edge_markov", model)
    benign_per_round = benign_s / max(1, benign.metrics.rounds_executed)
    faulted_per_round = faulted_s / max(1, faulted.metrics.rounds_executed)
    return {
        "scenario": "edge_markov",
        "faults": _axes(model),
        "n": N_OVERHEAD,
        "benign_ms_per_round": round(benign_per_round * 1e3, 3),
        "faulted_ms_per_round": round(faulted_per_round * 1e3, 3),
        "slowdown_ratio": round(faulted_per_round / benign_per_round, 2),
    }


def _recorded_headline_value(fallback: float, baseline_file: Path = BASELINE_FILE) -> float:
    """The previously recorded headline reference, or ``fallback`` if none."""
    try:
        recorded = json.loads(baseline_file.read_text())["headline"]["value"]
        return float(recorded)
    except (OSError, KeyError, TypeError, ValueError, json.JSONDecodeError):
        return fallback


def _write_baseline(catalog: list[dict], degradation: list[dict], overhead: dict) -> None:
    BASELINE_FILE.write_text(
        json.dumps(
            {
                "description": (
                    "E20 hostile-network fault axis on the kernel engine: per-scenario "
                    "survivors / surviving completion rate for the hostile catalog at "
                    "n=48, loss-intensity degradation curves for three protocols, and "
                    "the faulted-vs-benign per-round slowdown ratio at n=128."
                ),
                "catalog": catalog,
                "degradation": degradation,
                "overhead": overhead,
                "headline": {
                    "name": "e20_fault_overhead_ratio",
                    # Sticky reference: keep the previously recorded value so
                    # check_regression.py compares the live figure against a
                    # real baseline instead of the number this very run just
                    # measured.
                    "value": _recorded_headline_value(overhead["slowdown_ratio"]),
                    "larger_is_better": False,
                    "note": (
                        "recorded faulted-vs-benign per-round slowdown (sticky "
                        "across bench reruns); benchmarks/check_regression.py "
                        "fails a run more than 25% above this"
                    ),
                },
            },
            indent=1,
            sort_keys=True,
        )
        + "\n"
    )


#: Adaptive-overhead comparison: the bridge-loss adversary recomputes a
#: spanning forest and its cut edges from the live topology every round.
ADAPTIVE_MODEL = FaultModel(strategy=BridgeLossStrategy(probability=0.5))


def _adaptive_overhead_row() -> dict:
    benign, benign_s = _run(TokenForwardingNode, N, K, "edge_markov", None, seed=1)
    faulted, faulted_s = _run(
        TokenForwardingNode, N, K, "edge_markov", ADAPTIVE_MODEL, seed=1
    )
    benign_per_round = benign_s / max(1, benign.metrics.rounds_executed)
    faulted_per_round = faulted_s / max(1, faulted.metrics.rounds_executed)
    return {
        "scenario": "edge_markov",
        "faults": _axes(ADAPTIVE_MODEL),
        "n": N,
        "benign_ms_per_round": round(benign_per_round * 1e3, 3),
        "adaptive_ms_per_round": round(faulted_per_round * 1e3, 3),
        "slowdown_ratio": round(faulted_per_round / benign_per_round, 2),
    }


def _write_adaptive_baseline(overhead: dict) -> None:
    ADAPTIVE_BASELINE_FILE.write_text(
        json.dumps(
            {
                "description": (
                    "E20 adaptive-adversary overhead: per-round kernel slowdown of "
                    "a BridgeLossStrategy run (live spanning-forest + cut-edge "
                    "analysis every round) versus the identical benign run at n=48."
                ),
                "overhead": overhead,
                "headline": {
                    "name": "e20_adaptive_overhead_ratio",
                    # Sticky reference, like BENCH_HOSTILE.json's headline.
                    "value": _recorded_headline_value(
                        overhead["slowdown_ratio"], ADAPTIVE_BASELINE_FILE
                    ),
                    "larger_is_better": False,
                    "note": (
                        "recorded adaptive-vs-benign per-round slowdown (sticky "
                        "across bench reruns); benchmarks/check_regression.py "
                        "fails a run more than 25% above this"
                    ),
                },
            },
            indent=1,
            sort_keys=True,
        )
        + "\n"
    )


def test_e20_hostile_catalog_runs_on_kernel_engine():
    rows = _catalog_rows()
    assert len(rows) == len(hostile_scenarios())
    print_rows("E20 — hostile catalog, token forwarding, kernel engine", rows)


def test_e20_loss_degradation_curves():
    rows = _degradation_rows()
    print_rows("E20 — surviving completion rate vs loss intensity", rows)
    for protocol in PROTOCOLS:
        curve = [r for r in rows if r["protocol"] == protocol]
        assert [r["loss"] for r in curve] == [0.0, *LOSS_INTENSITIES]
        assert curve[0]["surviving_rate"] == 1.0
        # The heaviest loss intensity must show measurable degradation:
        # either not everyone finishes, or finishing takes strictly longer.
        worst = curve[-1]
        assert worst["surviving_rate"] < 1.0 or (
            worst["completion_round"] > curve[0]["completion_round"]
        )
    # The sweep must actually reach the failure regime: at least one point
    # with a partial surviving rate, recorded as data rather than an error.
    assert any(
        r["surviving_rate"] is not None and r["surviving_rate"] < 1.0 for r in rows
    )
    assert any(r["completion_round"] is None for r in rows)


def test_e20_fault_overhead_headline(benchmark):
    overhead = _overhead_row()
    _write_baseline(_catalog_rows(), _degradation_rows(), overhead)
    print(
        f"\nE20 — fault overhead at n={N_OVERHEAD}: "
        f"{overhead['faulted_ms_per_round']:.2f} ms/round faulted vs "
        f"{overhead['benign_ms_per_round']:.2f} ms/round benign: "
        f"{overhead['slowdown_ratio']:.2f}x"
    )
    record_headline(
        "e20_fault_overhead_ratio",
        overhead["slowdown_ratio"],
        larger_is_better=False,
    )
    benchmark.pedantic(
        lambda: _run(
            TokenForwardingNode, N_OVERHEAD, N_OVERHEAD, "edge_markov",
            FaultModel(loss=0.15, duplication=0.1), seed=1,
        ),
        rounds=1,
        iterations=1,
    )


def test_e20_adaptive_adversary_overhead_headline(benchmark):
    overhead = _adaptive_overhead_row()
    _write_adaptive_baseline(overhead)
    print(
        f"\nE20 — adaptive-adversary overhead at n={N}: "
        f"{overhead['adaptive_ms_per_round']:.2f} ms/round adaptive vs "
        f"{overhead['benign_ms_per_round']:.2f} ms/round benign: "
        f"{overhead['slowdown_ratio']:.2f}x"
    )
    record_headline(
        "e20_adaptive_overhead_ratio",
        overhead["slowdown_ratio"],
        larger_is_better=False,
    )
    benchmark.pedantic(
        lambda: _run(
            TokenForwardingNode, N, K, "edge_markov", ADAPTIVE_MODEL, seed=2
        ),
        rounds=1,
        iterations=1,
    )
