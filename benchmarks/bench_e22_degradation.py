"""E22: sweep-scale degradation campaigns over the third-generation axes.

E20 sweeps one hostile axis (loss intensity) per curve; this bench crosses
three orthogonal third-generation axes into one degradation *surface*:

* per-edge loss probability,
* radio-collision round probability (capture mode: a receiver hearing two
  or more simultaneous senders keeps only the lowest uid),
* fake quorum membership ``f`` (the ``n >= 2f+1`` bound holds at every
  point; completion and the surviving rate run over the honest quorum).

Every grid point is one seeded kernel-engine token-forwarding run on the
edge-Markov scenario, fanned out through ``sweep_map`` (parallel and
memoised like every other sweep bench).  The surface is recorded to
``BENCH_DEGRADATION.json``; its headline — the mean surviving completion
rate over the whole grid — is sticky and guarded by
``benchmarks/check_regression.py``: an engine change that silently makes
hostile runs *worse at completing* moves the live mean below the recorded
reference and fails CI.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.algorithms import TokenForwardingNode
from repro.network import CollisionModel, FaultModel, QuorumModel
from repro.scenarios import make_scenario
from repro.simulation import run_dissemination, standard_instance

from common import make_config, print_rows, record_headline, sweep_map

BASELINE_FILE = Path(__file__).resolve().parent.parent / "BENCH_DEGRADATION.json"

#: Grid size: 27 kernel runs at n=32 stay CI-cheap even uncached.
N = 32
#: The four highest uids stay payload-free (standard_instance places tokens
#: at uids 0..k-1), so fake quorum members never originate honest tokens.
K = N - 4
#: Token forwarding completes the benign corner in ~260 rounds at this
#: size; the cap leaves only modest headroom on purpose — the protocol's
#: flooding redundancy absorbs enormous per-edge loss given unlimited time,
#: so the campaign measures *timely* completion.  Hostile corners are
#: meant to run out: a partial surviving rate is the data point, not an
#: error.
MAX_ROUNDS = 300

LOSS_AXIS = (0.0, 0.5, 0.9)
COLLISION_AXIS = (0.0, 0.5, 0.9)
FAKE_AXIS = (0, 2, 4)


def _model(loss: float, collision: float, fake: int) -> FaultModel:
    return FaultModel(
        loss=loss,
        collisions=(
            CollisionModel(probability=collision, capture=True)
            if collision > 0.0
            else None
        ),
        quorum=(
            QuorumModel(fake=tuple(range(N - fake, N))) if fake > 0 else None
        ),
    )


def _degradation_point(*, loss: float, collision: float, fake: int, seed: int) -> dict:
    """One grid point: a seeded kernel run, reduced to JSON-safe figures."""
    config = make_config(N, k=K, d=8, b=max(64, N + 16))
    placement = standard_instance(N, K, 8, seed=seed)
    faults = _model(loss, collision, fake)
    result = run_dissemination(
        TokenForwardingNode,
        config,
        placement,
        make_scenario("edge_markov", N, seed=seed),
        seed=seed,
        engine="kernel",
        faults=faults if faults.active else None,
        max_rounds=MAX_ROUNDS,
        track_progress=True,
    )
    metrics = result.metrics
    if metrics.survivors is None:
        # The benign corner: no fault axis, population-wide completion.
        rate = 1.0 if metrics.completed else 0.0
        completion = metrics.completion_round
    else:
        rate = metrics.surviving_completion_rate
        completion = metrics.survivor_completion_round
    return {
        "loss": loss,
        "collision": collision,
        "fake": fake,
        "surviving_rate": round(rate, 3) if rate is not None else None,
        "completion_round": completion,
        "collided": metrics.collided_deliveries,
        "dropped": metrics.dropped_deliveries,
        "engine": result.engine,
    }


_SURFACE: list[dict] | None = None


def _surface() -> list[dict]:
    global _SURFACE
    if _SURFACE is None:
        points = [
            {"loss": loss, "collision": collision, "fake": fake, "seed": 2}
            for loss in LOSS_AXIS
            for collision in COLLISION_AXIS
            for fake in FAKE_AXIS
        ]
        _SURFACE = sweep_map(_degradation_point, points)
    return _SURFACE


def _mean_rate(rows: list[dict]) -> float:
    # A missing rate means no survivors at all — count it as full failure
    # so the headline can only improve by actually completing runs.
    return sum(
        row["surviving_rate"] if row["surviving_rate"] is not None else 0.0
        for row in rows
    ) / len(rows)


def _recorded_headline_value(fallback: float) -> float:
    """The previously recorded headline reference, or ``fallback`` if none."""
    try:
        recorded = json.loads(BASELINE_FILE.read_text())["headline"]["value"]
        return float(recorded)
    except (OSError, KeyError, TypeError, ValueError, json.JSONDecodeError):
        return fallback


def _write_baseline(rows: list[dict]) -> None:
    BASELINE_FILE.write_text(
        json.dumps(
            {
                "description": (
                    "E22 degradation campaign: surviving completion rate of "
                    "kernel-engine token forwarding at n=32 over the full "
                    "loss x radio-collision x fake-quorum grid "
                    f"({len(LOSS_AXIS)}x{len(COLLISION_AXIS)}x{len(FAKE_AXIS)} "
                    "points, edge-Markov topology)."
                ),
                "surface": rows,
                "headline": {
                    "name": "e22_degradation_mean_rate",
                    # Sticky reference: keep the previously recorded value so
                    # check_regression.py compares the live figure against a
                    # real baseline instead of the number this very run just
                    # measured.
                    "value": _recorded_headline_value(_mean_rate(rows)),
                    "larger_is_better": True,
                    "note": (
                        "mean surviving completion rate over the degradation "
                        "grid (sticky across bench reruns); "
                        "benchmarks/check_regression.py fails a run more "
                        "than 25% below this"
                    ),
                },
            },
            indent=1,
            sort_keys=True,
        )
        + "\n"
    )


def test_e22_degradation_surface():
    rows = _surface()
    assert len(rows) == len(LOSS_AXIS) * len(COLLISION_AXIS) * len(FAKE_AXIS)
    print_rows("E22 — loss x collision x fake-quorum degradation surface", rows)
    for row in rows:
        assert row["engine"] == "kernel", f"{row} fell off the kernel engine"
    benign = rows[0]
    assert (benign["loss"], benign["collision"], benign["fake"]) == (0.0, 0.0, 0)
    assert benign["surviving_rate"] == 1.0
    assert benign["collided"] == 0
    # Collisions must actually bite somewhere on the surface...
    assert any(row["collided"] > 0 for row in rows if row["collision"] > 0)
    # ...and the hostile extreme must measurably degrade against benign:
    # fewer honest completers, or completion strictly later.
    worst = max(rows, key=lambda r: (r["loss"], r["collision"], r["fake"]))
    degraded = (
        worst["surviving_rate"] is None
        or worst["surviving_rate"] < 1.0
        or worst["completion_round"] is None
        or worst["completion_round"] > benign["completion_round"]
    )
    assert degraded, f"hostile corner shows no degradation: {worst}"


def test_e22_degradation_headline(benchmark):
    rows = _surface()
    mean_rate = _mean_rate(rows)
    _write_baseline(rows)
    print(
        f"\nE22 — mean surviving completion rate over the "
        f"{len(rows)}-point degradation grid: {mean_rate:.3f}"
    )
    record_headline(
        "e22_degradation_mean_rate",
        mean_rate,
        larger_is_better=True,
    )
    benchmark.pedantic(
        lambda: _degradation_point(loss=0.2, collision=0.25, fake=2, seed=3),
        rounds=1,
        iterations=1,
    )
