"""E8 (Lemma 7.2): random-forward gathers ~sqrt(bk/d) tokens at some node.

Runs the random-forward primitive for n rounds and records the maximum
token count over nodes, sweeping k, next to the lemma's sqrt(bk/d) bound.
Also reports the waste fraction, the Section 5.2 effect that motivates
coding in the first place.
"""

from __future__ import annotations

import math

from repro.algorithms import RandomForwardNode
from repro.network import PathShuffleAdversary
from repro.simulation import run_dissemination, standard_instance

from common import make_config, print_rows, sweep_map


def _max_gathered(n: int, k: int, b: int, seed: int = 0):
    """Max per-node token count and waste after n rounds (sweep_map point).

    Runs a custom (non-completion) measurement, so it rides the generic
    :func:`common.sweep_map` harness rather than ``measure_sweep``; the
    return value is a JSON-able list so the cross-run memo can replay it.
    """
    config = make_config(n, k=k, d=8, b=b)
    placement = standard_instance(n, k, 8, seed=seed)
    result = run_dissemination(
        RandomForwardNode, config, placement, PathShuffleAdversary(seed=seed + 1),
        max_rounds=n, stop_at_completion=False, seed=seed,
    )
    best = max(len(node.known_token_ids()) for node in result.nodes)
    return [best, result.metrics.waste_fraction]


def test_e08_gathering_bound(benchmark):
    n = 32
    b = 32
    rows = []
    gathered = sweep_map(_max_gathered, [{"n": n, "k": k, "b": b} for k in (8, 16, 32)])
    for k, (best, waste) in zip((8, 16, 32), gathered):
        bound = math.sqrt(b * k / 8)
        rows.append(
            {
                "k": k,
                "max_tokens_at_one_node": best,
                "lemma_7_2_bound sqrt(bk/d)": round(bound, 1),
                "waste_fraction": round(waste, 3),
            }
        )
    print_rows(f"E8 — random-forward gathering after n={n} rounds (b={b}, d=8)", rows)
    for row in rows:
        assert row["max_tokens_at_one_node"] >= min(
            row["k"], int(row["lemma_7_2_bound sqrt(bk/d)"])
        )
    benchmark.pedantic(lambda: _max_gathered(24, 24, 32, seed=5), rounds=1, iterations=1)
