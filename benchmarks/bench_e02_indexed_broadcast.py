"""E2 (Lemma 5.3): RLNC indexed broadcast finishes in O(n + k) rounds.

Sweeps n (with k = n) under the adaptive bottleneck adversary and checks the
completion rounds grow ~linearly, using messages of ~k lg q + d bits.

The sweep runs on the process-parallel harness (`measure_sweep`) and, thanks
to the mask-native GF(2) fast path, now reaches n = 96 in seconds — the seed
implementation capped out around n = 48.
"""

from __future__ import annotations

from repro.algorithms import IndexedBroadcastNode
from repro.analysis import indexed_broadcast_message_bits, indexed_broadcast_rounds
from repro.network import BottleneckAdversary
from repro.simulation import fit_power_law

from common import make_config, measure_sweep, print_rows, run_once


def test_e02_indexed_broadcast_linear_rounds(benchmark):
    ns = (8, 16, 32, 64, 96)
    points = measure_sweep(
        IndexedBroadcastNode,
        [{"n": n} for n in ns],
        lambda point: make_config(int(point["n"]), d=8, b=int(point["n"]) + 32),
        BottleneckAdversary,
        repetitions=2,
    )
    rows = []
    for point in points:
        n = int(point.parameters["n"])
        m = point.measurement
        rows.append(
            {
                "n=k": n,
                "rounds": round(m.rounds_mean, 1),
                "predicted O(n+k)": indexed_broadcast_rounds(n, n),
                "msg_bits (k lg q + d)": int(indexed_broadcast_message_bits(n, 8)),
            }
        )
    print_rows("E2 — RLNC indexed broadcast vs n (adaptive bottleneck adversary)", rows)
    alpha, _ = fit_power_law([r["n=k"] for r in rows], [r["rounds"] for r in rows])
    print(f"measured scaling exponent: {alpha:.2f} (theory: ~1)")
    assert alpha < 1.5
    benchmark.pedantic(
        lambda: run_once(IndexedBroadcastNode, make_config(64, d=8, b=96), BottleneckAdversary),
        rounds=1,
        iterations=1,
    )
