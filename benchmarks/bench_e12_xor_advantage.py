"""E12 (Section 5.2): the end-phase XOR advantage.

Node A knows all k tokens, node B misses one unknown to A.  Deterministic
forwarding needs k rounds, random forwarding ~k/2, a single XOR suffices.
"""

from __future__ import annotations

from repro.analysis import compare_end_phase

from common import print_rows, sweep_map


def _end_phase_row(k: int) -> dict:
    """One end-phase comparison as a JSON-able row (sweep_map point)."""
    comparison = compare_end_phase(k=k, trials=300, seed=k)
    return {
        "k": k,
        "deterministic_forwarding": comparison.deterministic_forwarding,
        "random_forwarding_expected": comparison.expected_random_forwarding,
        "random_forwarding_measured": round(comparison.measured_random_forwarding, 1),
        "network_coding (XOR)": comparison.coded,
        "coding_advantage": round(comparison.coding_advantage, 1),
    }


def test_e12_end_phase_comparison(benchmark):
    rows = sweep_map(_end_phase_row, [{"k": k} for k in (8, 32, 128)])
    print_rows("E12 — Section 5.2 end-phase scenario", rows)
    assert all(r["network_coding (XOR)"] == 1 for r in rows)
    assert all(
        abs(r["random_forwarding_measured"] - (r["k"] + 1) / 2) < 0.25 * r["k"] for r in rows
    )
    benchmark.pedantic(lambda: compare_end_phase(k=64, trials=100, seed=0), rounds=1, iterations=1)
