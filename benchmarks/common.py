"""Shared helpers for the benchmark suite.

Every benchmark regenerates one "table/figure" of the paper — here, one
theorem/lemma/claim (see DESIGN.md section 4 and EXPERIMENTS.md).  Each
bench:

1. runs a small parameter sweep with the simulator,
2. prints the measured rows next to the paper's predicted leading-order
   expression (shape comparison, not absolute constants), and
3. wraps one representative execution in the pytest-benchmark fixture so
   ``pytest benchmarks/ --benchmark-only`` also reports wall-clock costs.

Scales are laptop-sized on purpose: the claims being validated are about
*who wins and how the advantage scales*, which already shows at n of a few
dozen.
"""

from __future__ import annotations

import os
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.algorithms.base import ProtocolConfig, ProtocolFactory
from repro.network import Adversary
from repro.simulation import (
    SweepPoint,
    SweepTask,
    measure,
    run_dissemination,
    standard_instance,
    sweep_tasks,
)
from repro.tokens import MessageBudget

__all__ = [
    "make_config",
    "run_once",
    "measure_rounds",
    "measure_sweep",
    "print_rows",
    "sweep_workers",
]


def sweep_workers(default: int = 4) -> int:
    """Worker-process count for benchmark sweeps.

    Controlled by ``REPRO_BENCH_WORKERS`` (set to ``1`` to force serial
    execution, e.g. when profiling); clamped to the machine's CPU count.
    The measurements are seed-deterministic either way — parallelism only
    changes wall-clock, never results.
    """
    try:
        requested = int(os.environ.get("REPRO_BENCH_WORKERS", default))
    except ValueError:
        requested = default
    return max(1, min(requested, os.cpu_count() or 1))


def make_config(
    n: int,
    k: int | None = None,
    d: int = 8,
    b: int | None = None,
    stability: int = 1,
    extra: dict | None = None,
) -> ProtocolConfig:
    """Terse configuration builder mirroring the tests' helper."""
    if k is None:
        k = n
    if b is None:
        b = max(d, n + 16)
    return ProtocolConfig(
        n=n,
        k=k,
        token_bits=d,
        budget=MessageBudget(b=b),
        stability=stability,
        extra=extra or {},
    )


def run_once(
    factory: ProtocolFactory,
    config: ProtocolConfig,
    adversary_factory: Callable[[], Adversary],
    seed: int = 0,
    k: int | None = None,
):
    """One dissemination run on the canonical instance; returns the RunResult."""
    placement = standard_instance(config.n, k if k is not None else config.k, config.token_bits, seed=seed)
    return run_dissemination(factory, config, placement, adversary_factory(), seed=seed)


def measure_rounds(
    factory: ProtocolFactory,
    config: ProtocolConfig,
    adversary_factory: Callable[[], Adversary],
    repetitions: int = 2,
    seed: int = 0,
    k: int | None = None,
):
    """Mean completion rounds over a couple of seeded repetitions."""
    placement = standard_instance(config.n, k if k is not None else config.k, config.token_bits, seed=seed)
    return measure(
        factory, config, placement, adversary_factory, repetitions=repetitions, base_seed=seed + 1
    )


def measure_sweep(
    factory: ProtocolFactory,
    points: Sequence[Mapping[str, object]],
    config_for: Callable[[Mapping[str, object]], ProtocolConfig],
    adversary_factory: Callable[[], Adversary],
    repetitions: int = 2,
    seed: int = 0,
    max_workers: int | None = None,
) -> list[SweepPoint]:
    """Measure every parameter point, fanned out over worker processes.

    ``config_for`` maps one parameter point (e.g. ``{"n": 64}``) to its
    :class:`ProtocolConfig`.  Each point is a self-seeded
    :class:`~repro.simulation.SweepTask`, so the sweep gives identical
    measurements serial or parallel; workers default to
    :func:`sweep_workers`.
    """
    tasks = [
        SweepTask(
            factory=factory,
            config=config_for(point),
            adversary_factory=adversary_factory,
            parameters=dict(point),
            instance_seed=seed,
            repetitions=repetitions,
            base_seed=seed + 1,
        )
        for point in points
    ]
    workers = sweep_workers() if max_workers is None else max_workers
    return sweep_tasks(tasks, max_workers=workers)


def print_rows(title: str, rows: list[dict]) -> None:
    """Print a result table (captured by pytest -s / the bench log)."""
    from repro.simulation import format_table

    print()
    print(format_table(rows, title=title))
