"""Shared helpers for the benchmark suite.

Every benchmark regenerates one "table/figure" of the paper — here, one
theorem/lemma/claim (see DESIGN.md section 4 and EXPERIMENTS.md).  Each
bench:

1. runs a small parameter sweep with the simulator,
2. prints the measured rows next to the paper's predicted leading-order
   expression (shape comparison, not absolute constants), and
3. wraps one representative execution in the pytest-benchmark fixture so
   ``pytest benchmarks/ --benchmark-only`` also reports wall-clock costs.

Scales are laptop-sized on purpose: the claims being validated are about
*who wins and how the advantage scales*, which already shows at n of a few
dozen.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.algorithms.base import ProtocolConfig, ProtocolFactory
from repro.network import Adversary
from repro.simulation import measure, run_dissemination, standard_instance
from repro.tokens import MessageBudget

__all__ = ["make_config", "run_once", "measure_rounds", "print_rows"]


def make_config(
    n: int,
    k: int | None = None,
    d: int = 8,
    b: int | None = None,
    stability: int = 1,
    extra: dict | None = None,
) -> ProtocolConfig:
    """Terse configuration builder mirroring the tests' helper."""
    if k is None:
        k = n
    if b is None:
        b = max(d, n + 16)
    return ProtocolConfig(
        n=n,
        k=k,
        token_bits=d,
        budget=MessageBudget(b=b),
        stability=stability,
        extra=extra or {},
    )


def run_once(
    factory: ProtocolFactory,
    config: ProtocolConfig,
    adversary_factory: Callable[[], Adversary],
    seed: int = 0,
    k: int | None = None,
):
    """One dissemination run on the canonical instance; returns the RunResult."""
    placement = standard_instance(config.n, k if k is not None else config.k, config.token_bits, seed=seed)
    return run_dissemination(factory, config, placement, adversary_factory(), seed=seed)


def measure_rounds(
    factory: ProtocolFactory,
    config: ProtocolConfig,
    adversary_factory: Callable[[], Adversary],
    repetitions: int = 2,
    seed: int = 0,
    k: int | None = None,
):
    """Mean completion rounds over a couple of seeded repetitions."""
    placement = standard_instance(config.n, k if k is not None else config.k, config.token_bits, seed=seed)
    return measure(
        factory, config, placement, adversary_factory, repetitions=repetitions, base_seed=seed + 1
    )


def print_rows(title: str, rows: list[dict]) -> None:
    """Print a result table (captured by pytest -s / the bench log)."""
    from repro.simulation import format_table

    print()
    print(format_table(rows, title=title))
