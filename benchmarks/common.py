"""Shared helpers for the benchmark suite.

Every benchmark regenerates one "table/figure" of the paper — here, one
theorem/lemma/claim (see DESIGN.md section 4 and EXPERIMENTS.md).  Each
bench:

1. runs a small parameter sweep with the simulator,
2. prints the measured rows next to the paper's predicted leading-order
   expression (shape comparison, not absolute constants), and
3. wraps one representative execution in the pytest-benchmark fixture so
   ``pytest benchmarks/ --benchmark-only`` also reports wall-clock costs.

Scales are laptop-sized on purpose: the claims being validated are about
*who wins and how the advantage scales*, which already shows at n of a few
dozen.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from repro import __version__
from repro.algorithms.base import ProtocolConfig, ProtocolFactory
from repro.network import Adversary
from repro.obs.provenance import tree_digest
from repro.simulation import (
    SweepCache,
    SweepPoint,
    SweepTask,
    measure,
    run_dissemination,
    standard_instance,
    sweep_tasks,
)
from repro.tokens import MessageBudget

__all__ = [
    "make_config",
    "record_headline",
    "run_once",
    "measure_rounds",
    "measure_sweep",
    "sweep_map",
    "print_rows",
    "sweep_cache_dir",
    "sweep_workers",
]


#: Default location of the cross-run sweep memo (persisted by CI via
#: ``actions/cache``; safe to delete at any time).
_DEFAULT_CACHE_DIR = Path(__file__).resolve().parent.parent / ".benchmarks" / "sweep-cache"


def sweep_cache_dir() -> Path | None:
    """Directory holding the benchmark suite's sweep memo files.

    ``REPRO_SWEEP_CACHE`` overrides the location; set it to ``0``/``off`` to
    disable caching entirely (e.g. when timing cold runs).  Caching never
    changes measurements — entries are keyed by a digest of everything that
    determines the result, salted with ``repro.__version__``.
    """
    raw = os.environ.get("REPRO_SWEEP_CACHE")
    if raw is None:
        return _DEFAULT_CACHE_DIR
    if raw.strip().lower() in ("", "0", "off", "none"):
        return None
    return Path(raw)


_SOURCE_DIGEST: str | None = None


def _source_digest() -> str:
    """Content hash of every tracked python source under src/ and benchmarks/.

    Cache entries key factories and point functions by *pickle reference*
    (module + qualname), which does not change when a function body changes —
    so the memo files themselves are salted with the source tree content and
    any code edit starts a fresh memo.  This is the local twin of the CI
    ``actions/cache`` key's ``hashFiles('src/**', 'benchmarks/**')``, built
    on the same :func:`repro.obs.provenance.tree_digest` primitive that
    stamps trace manifests.
    """
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        root = Path(__file__).resolve().parent.parent
        _SOURCE_DIGEST = tree_digest((root / "src", root / "benchmarks"), root)
    return _SOURCE_DIGEST


#: Where bench runs drop their live headline measurements for
#: ``benchmarks/check_regression.py`` (safe to delete at any time).
HEADLINE_DIR = Path(__file__).resolve().parent.parent / ".benchmarks" / "headlines"


def record_headline(name: str, value: float, *, larger_is_better: bool = True) -> None:
    """Record a live headline metric of one benchmark run.

    Each headline bench calls this with its machine-normalised figure
    (engine-vs-engine speedup ratios, not absolute seconds) after measuring
    it; ``benchmarks/check_regression.py`` then compares every live figure
    against the value recorded in the corresponding ``BENCH_*.json`` and
    fails the run on a > 25 % regression.
    """
    HEADLINE_DIR.mkdir(parents=True, exist_ok=True)
    path = HEADLINE_DIR / f"{name}.json"
    path.write_text(
        json.dumps(
            {
                "name": name,
                "value": value,
                "larger_is_better": larger_is_better,
                # Stamp the measurement with the source-tree content so the
                # regression check never compares figures measured on a
                # different version of the code (same rule as the sweep
                # cache keying).
                "source_digest": _source_digest(),
            },
            indent=1,
            sort_keys=True,
        )
    )


def sweep_workers(default: int = 4) -> int:
    """Worker-process count for benchmark sweeps.

    Controlled by ``REPRO_BENCH_WORKERS`` (set to ``1`` to force serial
    execution, e.g. when profiling); clamped to the machine's CPU count.
    The measurements are seed-deterministic either way — parallelism only
    changes wall-clock, never results.
    """
    try:
        requested = int(os.environ.get("REPRO_BENCH_WORKERS", default))
    except ValueError:
        requested = default
    return max(1, min(requested, os.cpu_count() or 1))


def make_config(
    n: int,
    k: int | None = None,
    d: int = 8,
    b: int | None = None,
    stability: int = 1,
    extra: dict | None = None,
) -> ProtocolConfig:
    """Terse configuration builder mirroring the tests' helper."""
    if k is None:
        k = n
    if b is None:
        b = max(d, n + 16)
    return ProtocolConfig(
        n=n,
        k=k,
        token_bits=d,
        budget=MessageBudget(b=b),
        stability=stability,
        extra=extra or {},
    )


def run_once(
    factory: ProtocolFactory,
    config: ProtocolConfig,
    adversary_factory: Callable[[], Adversary],
    seed: int = 0,
    k: int | None = None,
):
    """One dissemination run on the canonical instance; returns the RunResult."""
    placement = standard_instance(config.n, k if k is not None else config.k, config.token_bits, seed=seed)
    return run_dissemination(factory, config, placement, adversary_factory(), seed=seed)


def measure_rounds(
    factory: ProtocolFactory,
    config: ProtocolConfig,
    adversary_factory: Callable[[], Adversary],
    repetitions: int = 2,
    seed: int = 0,
    k: int | None = None,
):
    """Mean completion rounds over a couple of seeded repetitions."""
    placement = standard_instance(config.n, k if k is not None else config.k, config.token_bits, seed=seed)
    return measure(
        factory, config, placement, adversary_factory, repetitions=repetitions, base_seed=seed + 1
    )


def measure_sweep(
    factory: ProtocolFactory | None,
    points: Sequence[Mapping[str, object]],
    config_for: Callable[[Mapping[str, object]], ProtocolConfig],
    adversary_factory: Callable[[], Adversary] | None = None,
    repetitions: int = 2,
    seed: int = 0,
    max_workers: int | None = None,
    *,
    factory_for: Callable[[Mapping[str, object]], ProtocolFactory] | None = None,
    adversary_for: Callable[[Mapping[str, object]], Callable[[], Adversary]] | None = None,
    instance_k: int | Callable[[Mapping[str, object]], int | None] | None = None,
    base_seed: int | None = None,
    max_rounds: int | Callable[[Mapping[str, object]], int | None] | None = None,
) -> list[SweepPoint]:
    """Measure every parameter point, fanned out over worker processes.

    ``config_for`` maps one parameter point (e.g. ``{"n": 64}``) to its
    :class:`ProtocolConfig`; ``factory_for`` / ``adversary_for`` do the same
    for benches whose protocol factory or adversary depends on the point
    (everything shipped to workers must be picklable — classes, module-level
    functions, ``functools.partial`` of those).  Each point is a self-seeded
    :class:`~repro.simulation.SweepTask`, so the sweep gives identical
    measurements serial or parallel; workers default to
    :func:`sweep_workers`, and results are memoised across runs in
    :func:`sweep_cache_dir`.
    """
    if (factory is None) == (factory_for is None):
        raise ValueError("pass exactly one of factory / factory_for")
    if (adversary_factory is None) == (adversary_for is None):
        raise ValueError("pass exactly one of adversary_factory / adversary_for")

    def _per_point(option, point):
        return option(point) if callable(option) else option

    tasks = [
        SweepTask(
            factory=factory if factory is not None else factory_for(point),
            config=config_for(point),
            adversary_factory=(
                adversary_factory if adversary_factory is not None else adversary_for(point)
            ),
            parameters=dict(point),
            instance_k=_per_point(instance_k, point),
            instance_seed=seed,
            repetitions=repetitions,
            base_seed=seed + 1 if base_seed is None else base_seed,
            max_rounds=_per_point(max_rounds, point),
        )
        for point in points
    ]
    workers = sweep_workers() if max_workers is None else max_workers
    cache_dir = sweep_cache_dir()
    cache = (
        SweepCache(cache_dir / f"measurements-{_source_digest()}.json")
        if cache_dir is not None
        else None
    )
    return sweep_tasks(tasks, max_workers=workers, cache=cache)


def _call_with_point(payload: tuple[Callable, Mapping[str, object]]):
    """Top-level apply helper so ``ProcessPoolExecutor.map`` can pickle it."""
    fn, point = payload
    return fn(**point)


def sweep_map(
    fn: Callable[..., object],
    points: Sequence[Mapping[str, object]],
    *,
    max_workers: int | None = None,
) -> list:
    """Evaluate ``fn(**point)`` at every point, in parallel and memoised.

    The :func:`measure_sweep` twin for benches whose per-point result is not
    a completion-rounds :class:`~repro.simulation.Measurement` (custom run
    drivers, analysis formulas, decomposition statistics).  ``fn`` must be a
    module-level function (pickled by reference into the workers) returning
    JSON-serialisable data, and must be deterministic in its keyword
    arguments — that is what makes the cross-run memo in
    :func:`sweep_cache_dir` safe.  Results come back in point order.
    """
    fn_digest = SweepTask._identity_digest(fn)
    keys = [
        hashlib.sha256(
            "|".join(
                [__version__, fn_digest, json.dumps(point, sort_keys=True, default=repr)]
            ).encode()
        ).hexdigest()
        for point in points
    ]

    cache_dir = sweep_cache_dir()
    entries: dict[str, object] = {}
    cache_path = None
    if cache_dir is not None:
        cache_path = cache_dir / f"points-{_source_digest()}.json"
        if cache_path.exists():
            try:
                entries = json.loads(cache_path.read_text())
            except (OSError, json.JSONDecodeError):
                entries = {}

    results: list = [entries.get(key) for key in keys]
    pending = [index for index, result in enumerate(results) if result is None]

    if pending:
        workers = sweep_workers() if max_workers is None else max_workers
        payloads = [(fn, dict(points[index])) for index in pending]
        if workers > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=workers) as executor:
                computed = list(executor.map(_call_with_point, payloads))
        else:
            computed = [_call_with_point(payload) for payload in payloads]
        for index, value in zip(pending, computed):
            results[index] = value
            entries[keys[index]] = value
        if cache_path is not None:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = cache_path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(entries, indent=1, sort_keys=True))
            tmp.replace(cache_path)

    return results


def print_rows(title: str, rows: list[dict]) -> None:
    """Print a result table (captured by pytest -s / the bench log)."""
    from repro.simulation import format_table

    print()
    print(format_table(rows, title=title))
