"""E14 (Section 8.1): the patch decomposition guarantees.

For random connected graphs and several radii D, measures patch sizes,
diameters (via tree height) and the number of Luby phases, against the
paper's guarantees: size >= D/2, diameter <= 2D, O(log n) MIS phases.
"""

from __future__ import annotations

import numpy as np

from repro.network import compute_patches, random_connected_graph

from common import print_rows, sweep_map


def _decompose(n: int, radius: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    graph = random_connected_graph(n, np.random.default_rng(seed + 1), extra_edge_prob=0.02)
    return compute_patches(graph, radius=radius, rng=rng)


def _patch_row(n: int, radius: int) -> dict:
    """One decomposition's guarantee statistics (sweep_map point)."""
    decomposition = _decompose(n, radius)
    return {
        "D": radius,
        "num_patches": len(decomposition.patches),
        "min_patch_size": decomposition.min_patch_size,
        "size_guarantee D/2": radius / 2,
        "max_tree_height": max(p.height for p in decomposition.patches),
        "diameter_guarantee 2D": 2 * radius,
        "luby_phases": decomposition.mis_rounds,
    }


def test_e14_patch_guarantees(benchmark):
    n = 60
    rows = sweep_map(_patch_row, [{"n": n, "radius": radius} for radius in (2, 3, 5)])
    print_rows(f"E14 — patch decomposition guarantees (n={n}, random connected graphs)", rows)
    for row in rows:
        assert row["min_patch_size"] >= row["size_guarantee D/2"] - 1
        assert row["max_tree_height"] <= row["D"]
        assert row["luby_phases"] <= 4 * np.log2(n)
    benchmark.pedantic(lambda: _decompose(40, 3, seed=7), rounds=1, iterations=1)
